// Client-visible vocabulary of the SODA kernel (§3.7).
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"

namespace soda {

using net::Mid;
using net::Pattern;
using net::RequesterSignature;
using net::ServerSignature;
using net::Tid;
using net::kAnycastMid;
using net::kBroadcastMid;
using net::kNoTid;
using net::kPatternMask;
using net::kReservedBit;
using net::kWellKnownBit;

using Bytes = std::vector<std::byte>;

/// Why the handler was invoked (§3.7.6).
enum class HandlerReason : std::uint8_t {
  kRequestArrival,     // an incoming REQUEST was delivered (the "tag")
  kRequestCompletion,  // one of our REQUESTs finished (any status)
  kBooting,            // first invocation of a freshly loaded client
};

/// Completion status reported to the requester's handler.
enum class CompletionStatus : std::uint8_t {
  kCompleted,     // the server ACCEPTed; data was exchanged
  kCrashed,       // the server crashed / died / went silent
  kUnadvertised,  // the pattern was not advertised at the server
  kTimedOut,      // the server stayed BUSY past the retry budget (overload)
};

/// Result of the server-side blocking ACCEPT (§3.3.2).
enum class AcceptStatus : std::uint8_t {
  kSuccess,
  kCancelled,  // the request completed or was cancelled (incl. wrong client)
  kCrashed,    // the requester crashed before/while the ACCEPT ran
};

enum class CancelStatus : std::uint8_t { kSuccess, kFail };

const char* to_string(HandlerReason r);
const char* to_string(CompletionStatus s);
const char* to_string(AcceptStatus s);
const char* to_string(CancelStatus s);

/// Everything the kernel passes to a handler invocation (§3.7.6). Fields
/// are populated according to `reason`.
struct HandlerArgs {
  HandlerReason reason = HandlerReason::kRequestArrival;

  /// Arrival: who asked. Completion: <own MID, tid of the finished REQUEST>.
  RequesterSignature asker;

  /// Arrival: the REQUEST argument. Completion: the ACCEPT argument.
  std::int32_t arg = 0;

  /// Completion only.
  CompletionStatus status = CompletionStatus::kCompleted;

  /// Arrival only: the pattern part of the server signature used.
  Pattern invoked_pattern = 0;

  /// Arrival: buffer sizes offered by the REQUEST.
  /// Completion: bytes actually transferred in each direction.
  std::uint32_t put_size = 0;
  std::uint32_t get_size = 0;

  /// Booting only: MID of the client that loaded us.
  Mid parent = kBroadcastMid;
};

/// Result of the blocking ACCEPT.
struct AcceptResult {
  AcceptStatus status = AcceptStatus::kSuccess;
  std::uint32_t put_received = 0;  // requester->server bytes landed
  std::uint32_t get_sent = 0;      // server->requester bytes shipped
};

}  // namespace soda
