#include "core/kernel.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

namespace soda {

using net::Frame;
using sim::TraceCategory;

namespace {

Bytes pattern_to_bytes(Pattern p) {
  Bytes b(8);
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<std::byte>((p >> (8 * i)) & 0xFF);
  }
  return b;
}

Pattern pattern_from_bytes(const Bytes& b) {
  Pattern p = 0;
  for (std::size_t i = 0; i < 8 && i < b.size(); ++i) {
    p |= static_cast<Pattern>(std::to_integer<std::uint8_t>(b[i])) << (8 * i);
  }
  return p & kPatternMask;
}

}  // namespace

Kernel::Kernel(sim::Simulator& sim, net::Bus& bus, Mid mid, NodeConfig config,
               UniqueIdSource& uids, NodeCpu& cpu, KernelHost& host)
    : sim_(sim),
      config_(std::move(config)),
      mid_(mid),
      uids_(uids),
      cpu_(cpu),
      host_(host),
      metrics_(sim.metrics().node(mid)),
      transport_(
          sim, bus, mid, config_.timing, cpu,
          proto::TransportCallbacks{
              [this](const Frame& f) { return classify(f); },
              [this](const Frame& f) { deliver(f); },
              [this](Mid peer, const Frame& sent) { on_acked(peer, sent); },
              [this](Mid peer, const Frame& sent, net::NackReason reason) {
                on_failed(peer, sent, reason);
              },
              [this](Mid peer, const Frame& sent, std::uint8_t hint) {
                on_busy(peer, sent, hint);
              }}) {
  boot_patterns_.insert(kDefaultBootPattern);
  if (config_.initial_tid > 1) {
    next_tid_ = config_.initial_tid;
    boot_min_tid_ = config_.initial_tid;
  }
  if (config_.nic_pattern_filter) {
    // The predicate reads live kernel state, so advertise/unadvertise and
    // client death are reflected without re-registering.
    bus.set_interest_filter(mid_, [this](const Frame& f) {
      if (!f.discover || f.discover->is_reply) return true;
      const Pattern p = f.discover->pattern & kPatternMask;
      return (host_.has_client() && pattern_bound(p)) || reserved_bound(p);
    });
  }
}

bool Kernel::client_dead() const { return !host_.has_client(); }

// ===================================================================
// Naming primitives (§3.4)

bool Kernel::advertise(Pattern p) {
  cpu_.charge(config_.timing.client_trap, CostCategory::kClientOverhead);
  if (net::is_reserved_pattern(p)) return false;
  p &= kPatternMask;
  if (config_.indexed_pattern_table) {
    // §5.4: the low 8 bits index a 256-entry array; a colliding advertise
    // overwrites the previous occupant — the 1984 artefact, reproduced.
    const auto slot = static_cast<std::size_t>(p & 0xFF);
    indexed_table_[slot] = p;
    indexed_used_[slot] = true;
    return true;
  }
  client_patterns_.insert(p);
  return true;
}

bool Kernel::unadvertise(Pattern p) {
  cpu_.charge(config_.timing.client_trap, CostCategory::kClientOverhead);
  if (net::is_reserved_pattern(p)) return false;
  p &= kPatternMask;
  if (config_.indexed_pattern_table) {
    const auto slot = static_cast<std::size_t>(p & 0xFF);
    if (!indexed_used_[slot] || indexed_table_[slot] != p) return false;
    indexed_used_[slot] = false;
    return true;
  }
  return client_patterns_.erase(p) > 0;
}

bool Kernel::pattern_bound(Pattern p) const {
  p &= kPatternMask;
  if (config_.indexed_pattern_table) {
    const auto slot = static_cast<std::size_t>(p & 0xFF);
    return indexed_used_[slot] && indexed_table_[slot] == p;
  }
  return client_patterns_.count(p) > 0;
}

bool Kernel::advertised(Pattern p) const { return pattern_bound(p); }

Pattern Kernel::get_unique_id() {
  cpu_.charge(config_.timing.client_trap, CostCategory::kClientOverhead);
  Pattern p = uids_.next(mid_);
  if (config_.randomized_unique_ids) {
    // §6.15: GETUNIQUEID returns fewer than PATTERNSIZE bits, so a random
    // component can ride above the serial/counter pair, keeping patterns
    // unique but hard to guess.
    const Pattern random_bits = sim_.rng().next_below(1u << 6);
    p |= (random_bits << 40);
    p &= ~(kReservedBit | kWellKnownBit) & kPatternMask;
  }
  return p;
}

// ===================================================================
// REQUEST (§3.3.1)

std::optional<Tid> Kernel::request(RequestParams params) {
  cpu_.charge(config_.timing.client_trap, CostCategory::kClientOverhead);
  if (live_requests() >= config_.max_requests) {
    // "If MAXREQUESTS remain uncompleted, a REQUEST is ignored by the
    // kernel" (§3.7.4).
    return std::nullopt;
  }
  if (params.put_data.size() > config_.max_message_bytes ||
      params.get_size > config_.max_message_bytes) {
    return std::nullopt;
  }

  bool anycast_unresolved = false;
  if (params.server.mid == net::kAnycastMid) {
    // Anycast (doc/OVERLOAD.md §4): pick the least-shed pool member for
    // this pattern. Resolution happens before the trace record so the
    // traced peer is the concrete server chosen.
    if (auto m = anycast_pick(params.server.pattern & kPatternMask)) {
      params.server.mid = *m;
    } else {
      anycast_unresolved = true;  // empty pool: fail like unknown pattern
    }
  }

  const Tid tid = next_tid_++;
  PendingRequest p;
  p.tid = tid;
  p.server = params.server;
  p.arg = params.arg;
  p.put_data = std::move(params.put_data);
  p.get_size = params.get_size;
  p.get_into = params.get_into;
  p.issued_at = sim_.now();

  metrics_.add(stats::Counter::kRequestsIssued);
  sim_.trace().record(sim_.now(), TraceCategory::kRequestIssued, mid_,
                      sim::TracePayload{}
                          .with_peer(params.server.mid)
                          .with_tid(static_cast<std::int32_t>(tid)));

  if (params.server.mid == kBroadcastMid) {
    // DISCOVER (§3.4.4): broadcast the query, collect staggered replies
    // for a window, then complete like a GET.
    p.discover = true;
    Frame f;
    f.discover = net::DiscoverSection{params.server.pattern, tid, false};
    pending_.emplace(tid, std::move(p));
    transport_.broadcast(std::move(f));
    sim_.after(config_.timing.discover_window,
               [this, tid]() { finish_discover(tid); });
    return tid;
  }

  if (params.server.mid == mid_ || anycast_unresolved) {
    // "There is no provision for local messages" (§3.3): fail the request
    // the same way an unknown pattern would. An anycast request against an
    // empty pool (no DISCOVER reply seen yet) fails identically.
    pending_.emplace(tid, std::move(p));
    sim_.after(0, [this, tid]() {
      auto it = pending_.find(tid);
      if (it != pending_.end()) {
        fail_request(it->second, CompletionStatus::kUnadvertised);
      }
    });
    return tid;
  }

  Frame f;
  f.request = net::RequestSection{
      tid, params.server.pattern, params.arg,
      static_cast<std::uint32_t>(p.put_data.size()), p.get_size,
      /*carries_data=*/!p.put_data.empty()};
  if (!p.put_data.empty()) {
    f.data = p.put_data;  // the pending entry keeps a copy for a late DATA
    f.data_tag = net::DataTag::kRequestData;
    f.data_tid = tid;
  }
  const Mid peer = params.server.mid;
  const auto response_allowance =
      static_cast<sim::Duration>(p.get_size) *
      config_.timing.retransmit_per_byte;
  pending_.emplace(tid, std::move(p));
  transport_.send_sequenced(peer, std::move(f),
                            {.strip_data_on_retransmit = true,
                             .urgent = false,
                             .response_allowance = response_allowance});
  return tid;
}

void Kernel::finish_discover(Tid tid) {
  auto it = pending_.find(tid);
  if (it == pending_.end()) return;
  PendingRequest& p = it->second;
  const std::uint32_t room = p.get_size / 4;
  const std::uint32_t n =
      std::min<std::uint32_t>(room, static_cast<std::uint32_t>(
                                        p.discovered.size()));
  if (p.get_into) {
    p.get_into->resize(n * 4);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t m = static_cast<std::uint32_t>(p.discovered[i]);
      (*p.get_into)[i * 4 + 0] = static_cast<std::byte>(m & 0xFF);
      (*p.get_into)[i * 4 + 1] = static_cast<std::byte>((m >> 8) & 0xFF);
      (*p.get_into)[i * 4 + 2] = static_cast<std::byte>((m >> 16) & 0xFF);
      (*p.get_into)[i * 4 + 3] = static_cast<std::byte>((m >> 24) & 0xFF);
    }
  }
  complete_request(p, CompletionStatus::kCompleted, /*arg=*/0,
                   /*put_done=*/0, /*get_done=*/n * 4);
}

// ===================================================================
// ACCEPT (§3.3.2)

sim::Future<AcceptResult> Kernel::accept(AcceptParams params) {
  cpu_.charge(config_.timing.client_trap, CostCategory::kClientOverhead);
  sim::Promise<AcceptResult> pr;
  const RequesterSignature rs = params.requester;
  metrics_.add(stats::Counter::kAcceptsIssued);
  sim_.trace().record(sim_.now(), TraceCategory::kAcceptIssued, mid_,
                      sim::TracePayload{}
                          .with_peer(rs.mid)
                          .with_tid(static_cast<std::int32_t>(rs.tid)));

  if (rs.mid == mid_ || rs.mid == kBroadcastMid || rs.tid == kNoTid) {
    pr.set(AcceptResult{AcceptStatus::kCancelled, 0, 0});
    return pr.future();
  }

  const ServerKey key{rs.mid, rs.tid};
  auto dit = delivered_.find(key);
  if (dit == delivered_.end()) {
    if (is_recently_completed(key)) {
      // Accepting an already-completed request (§3.6.1).
      pr.set(AcceptResult{AcceptStatus::kCancelled, 0, 0});
      return pr.future();
    }
    // We never received this request: offer the ACCEPT on the wire and let
    // the requester's kernel judge it (guessed signatures fail there with
    // CANCELLED / WRONG_CLIENT / CRASHED, §3.3.2 item 6).
    Frame af;
    af.accept = net::AcceptSection{rs.tid, params.arg, 0, 0, false, false};
    OngoingAccept oa;
    oa.promise = pr;
    oa.requester = rs;
    oa.issued_at = sim_.now();
    accepts_.emplace(key, std::move(oa));
    transport_.send_sequenced(rs.mid, std::move(af));
    return pr.future();
  }

  DeliveredRequest& dr = dit->second;
  if (dr.accepting) {
    pr.set(AcceptResult{AcceptStatus::kCancelled, 0, 0});
    return pr.future();
  }

  const std::uint32_t put_n = std::min(dr.put_size, params.max_take);
  const std::uint32_t get_n = std::min(
      static_cast<std::uint32_t>(params.reply_data.size()), dr.get_size);
  const bool have_data = dr.data_present;
  const bool needs_put = put_n > 0 && !have_data;

  if (have_data && put_n > 0 && params.take_into) {
    // The receive-side copy was already charged when the frame landed in
    // the input buffer; handing the bytes to the client is the same copy.
    params.take_into->assign(dr.data.begin(), dr.data.begin() + put_n);
  }

  AcceptResult result{AcceptStatus::kSuccess, have_data ? put_n : 0, get_n};

  if (!needs_put && get_n == 0 && transport_.ack_pending(rs.mid)) {
    // Fast path: the ACCEPT rides on the delayed ACK of the REQUEST —
    // the paper's two-packet PUT (§5.2.3). Reliable because a lost
    // ACCEPT+ACK is replayed when the requester retransmits.
    Frame af;
    af.accept = net::AcceptSection{rs.tid, params.arg, put_n, 0, false, false};
    transport_.send_control(rs.mid, std::move(af), /*store_as_response=*/true);
    note_service_sample(sim_.now() - dit->second.delivered_at);
    delivered_.erase(dit);
    note_completed(key);
    metrics_.add(stats::Counter::kAcceptsCompleted);
    metrics_.observe(stats::Latency::kAcceptWait, 0);
    sim_.trace().record(sim_.now(), TraceCategory::kAcceptCompleted, mid_,
                        sim::TracePayload{}
                            .with_peer(rs.mid)
                            .with_tid(static_cast<std::int32_t>(rs.tid))
                            .with_status(sim::TraceStatus::kPiggybacked));
    pr.set(result);
    return pr.future();
  }

  // Slow path: a sequenced ACCEPT frame, carrying reply data and asking
  // for a late DATA frame when the REQUEST data did not survive.
  Frame af;
  af.accept = net::AcceptSection{rs.tid, params.arg,     put_n,
                                 get_n,  needs_put,      get_n > 0};
  if (get_n > 0) {
    params.reply_data.resize(get_n);
    af.data = std::move(params.reply_data);
    af.data_tag = net::DataTag::kAcceptData;
    af.data_tid = rs.tid;
  }
  OngoingAccept oa;
  oa.promise = pr;
  oa.requester = rs;
  oa.take_into = params.take_into;
  oa.max_take = params.max_take;
  oa.waiting_put_data = needs_put;
  oa.result = result;
  oa.issued_at = sim_.now();
  dr.accepting = true;
  accepts_.emplace(key, std::move(oa));
  transport_.send_sequenced(rs.mid, std::move(af));
  if (needs_put) arm_accept_data_deadline(key);
  return pr.future();
}

void Kernel::arm_accept_data_deadline(ServerKey key) {
  // A waiting ACCEPT must not outlive the requester's willingness to
  // supply the late data: once the requester's DATA retransmission budget
  // (or its own view of this exchange) is spent it completes the request
  // as CRASHED and forgets the TID, and nothing it sends afterwards can
  // release this handler. Give the data one record lifetime plus a full
  // retransmission span to arrive, then declare the requester crashed
  // (§3.3.2: an ACCEPT fails if the requesting machine crashed).
  const sim::Duration grace =
      config_.timing.record_lifetime() + config_.timing.retransmit_span();
  const sim::Time issued = sim_.now();
  sim_.after(grace, [this, key, issued, epoch = death_epoch_]() {
    if (epoch != death_epoch_) return;
    auto it = accepts_.find(key);
    if (it == accepts_.end() || !it->second.waiting_put_data ||
        it->second.issued_at != issued) {
      return;
    }
    OngoingAccept& oa = it->second;
    AcceptResult result;
    result.status = AcceptStatus::kCrashed;
    sim_.trace().record(sim_.now(), TraceCategory::kAcceptCompleted, mid_,
                        sim::TracePayload{}
                            .with_peer(key.first)
                            .with_tid(static_cast<std::int32_t>(key.second))
                            .with_status(sim::TraceStatus::kCrashed));
    auto promise = std::move(oa.promise);
    auto kernel_done = std::move(oa.kernel_done);
    accepts_.erase(it);
    delivered_.erase(key);
    note_completed(key);
    if (promise) promise->set(result);
    if (kernel_done) kernel_done(result);
  });
}

void Kernel::finish_accept(ServerKey key, OngoingAccept& oa) {
  if (!oa.frame_acked || oa.waiting_put_data) return;
  metrics_.add(stats::Counter::kAcceptsCompleted);
  metrics_.observe(stats::Latency::kAcceptWait, sim_.now() - oa.issued_at);
  sim_.trace().record(sim_.now(), TraceCategory::kAcceptCompleted, mid_,
                      sim::TracePayload{}
                          .with_peer(key.first)
                          .with_tid(static_cast<std::int32_t>(key.second))
                          .with_status(sim::TraceStatus::kCompleted));
  AcceptResult result = oa.result;
  auto promise = std::move(oa.promise);
  auto kernel_done = std::move(oa.kernel_done);
  if (auto dit = delivered_.find(key); dit != delivered_.end()) {
    note_service_sample(sim_.now() - dit->second.delivered_at);
    delivered_.erase(dit);
  }
  note_completed(key);
  accepts_.erase(key);
  if (promise) promise->set(result);
  if (kernel_done) kernel_done(result);
}

void Kernel::handle_late_data(const net::Frame& f) {
  const ServerKey key{f.src, f.data_tid};
  auto it = accepts_.find(key);
  if (it != accepts_.end() && it->second.waiting_put_data) {
    OngoingAccept& oa = it->second;
    const std::uint32_t n = std::min(
        oa.max_take, static_cast<std::uint32_t>(f.data.size()));
    if (oa.take_into) {
      oa.take_into->assign(f.data.begin(), f.data.begin() + n);
    }
    if (oa.kernel_on_data) oa.kernel_on_data(f.data);
    oa.result.put_received = n;
    oa.waiting_put_data = false;
    finish_accept(key, oa);
  }
  // Acknowledge in all cases (duplicates included): the requester's
  // exchange finishes on this DATA_ACK — the paper's final "ACK (by
  // server)" packet.
  Frame ackf;
  ackf.data_ack = f.data_tid;
  transport_.send_control(f.src, std::move(ackf));
}

// ===================================================================
// CANCEL (§3.3.3)

sim::Future<CancelStatus> Kernel::cancel(Tid tid) {
  cpu_.charge(config_.timing.client_trap, CostCategory::kClientOverhead);
  sim::Promise<CancelStatus> pr;
  auto it = pending_.find(tid);
  if (it == pending_.end() || it->second.discover ||
      it->second.accept_info.has_value() ||
      it->second.cancel_promise.has_value()) {
    pr.set(CancelStatus::kFail);
    return pr.future();
  }
  PendingRequest& p = it->second;
  p.cancel_promise = pr;
  if (p.phase == PendingRequest::Phase::kDelivered) {
    send_cancel_query(p);
  } else {
    // A REQUEST is only eligible for cancellation once acknowledged
    // (§5.2.3); the query goes out when the delivery ack arrives.
    p.cancel_requested = true;
  }
  return pr.future();
}

void Kernel::send_cancel_query(PendingRequest& p) {
  p.cancel_sent = true;
  Frame f;
  f.cancel = net::CancelSection{p.tid, false, false};
  transport_.send_sequenced(p.server.mid, std::move(f));
}

// ===================================================================
// Handler control (§3.3.4)

void Kernel::open() {
  if (handler_busy_) {
    open_change_pending_ = true;
    pending_open_value_ = true;
    return;
  }
  handler_open_ = true;
  try_dispatch();
  if (!handler_busy_ && held_frame_ && handler_available_for_arrival()) {
    Frame f = *held_frame_;
    clear_held_frame();
    transport_.accept_held(f);
  }
}

void Kernel::close() {
  if (handler_busy_) {
    open_change_pending_ = true;
    pending_open_value_ = false;
    return;
  }
  handler_open_ = false;
}

void Kernel::endhandler() {
  handler_busy_ = false;
  sim_.trace().record(sim_.now(), TraceCategory::kHandlerEnded, mid_);
  if (open_change_pending_) {
    handler_open_ = pending_open_value_;
    open_change_pending_ = false;
  }
  if (config_.pipelined) {
    // The pipelined kernel's ENDHANDLER checks the input buffer for a
    // REQUEST that arrived while the handler was busy (§5.2.3).
    cpu_.charge(config_.timing.pipeline_check, CostCategory::kProtocol);
  }
  try_dispatch();
  if (!handler_busy_ && held_frame_ && handler_available_for_arrival()) {
    Frame f = *held_frame_;
    clear_held_frame();
    transport_.accept_held(f);
  }
  if (!handler_busy_) {
    host_.drain_client_deferred();
  }
}

bool Kernel::handler_available_for_arrival() const {
  // "As long as queued completion interrupts are present, the handler is
  // considered BUSY" for arrivals (§3.7.5).
  return host_.has_client() && handler_open_ && !handler_busy_ &&
         completions_.empty();
}

void Kernel::post_completion(HandlerArgs args) {
  if (!host_.has_client()) return;
  completions_.push_back(args);
  try_dispatch();
}

void Kernel::try_dispatch() {
  if (!host_.has_client()) {
    completions_.clear();
    return;
  }
  if (!handler_open_ || handler_busy_ || completions_.empty()) return;
  handler_busy_ = true;
  HandlerArgs args = completions_.front();
  completions_.pop_front();
  cpu_.run(config_.timing.context_switch, CostCategory::kContextSwitch,
           [this, args, epoch = death_epoch_]() {
             if (epoch != death_epoch_) return;
             if (!host_.has_client()) {
               handler_busy_ = false;
               return;
             }
             metrics_.add(stats::Counter::kHandlerInvocations);
             sim_.trace().record(
                 sim_.now(), TraceCategory::kHandlerInvoked, mid_,
                 sim::TracePayload{}.with_status(
                     sim::TraceStatus::kCompletion));
             host_.invoke_handler(args);
           });
}

void Kernel::set_held_frame(const net::Frame& f) {
  held_frame_ = f;
  if (hold_timer_armed_) sim_.cancel(hold_timer_);
  hold_timer_armed_ = true;
  hold_timer_ = sim_.after(
      config_.input_buffer_hold, [this, epoch = death_epoch_]() {
        if (epoch != death_epoch_) return;
        hold_timer_armed_ = false;
        if (!held_frame_) return;
        Frame f = *held_frame_;
        held_frame_.reset();
        transport_.reject_held(f);
      });
}

void Kernel::clear_held_frame() {
  held_frame_.reset();
  if (hold_timer_armed_) {
    sim_.cancel(hold_timer_);
    hold_timer_armed_ = false;
  }
}

// ===================================================================
// Process control (§3.5)

void Kernel::client_booted(Mid parent) {
  handler_open_ = true;
  handler_busy_ = true;
  HandlerArgs args;
  args.reason = HandlerReason::kBooting;
  args.parent = parent;
  cpu_.run(config_.timing.context_switch, CostCategory::kContextSwitch,
           [this, args, epoch = death_epoch_]() {
             if (epoch != death_epoch_) return;
             if (!host_.has_client()) {
               handler_busy_ = false;
               return;
             }
             metrics_.add(stats::Counter::kHandlerInvocations);
             sim_.trace().record(
                 sim_.now(), TraceCategory::kHandlerInvoked, mid_,
                 sim::TracePayload{}.with_status(sim::TraceStatus::kBooting));
             host_.invoke_handler(args);
           });
}

void Kernel::die() {
  cpu_.charge(config_.timing.client_trap, CostCategory::kClientOverhead);
  reset_for_death(/*client_initiated=*/true);
}

void Kernel::crash() { reset_for_death(/*client_initiated=*/false); }

void Kernel::reset_for_death(bool client_initiated) {
  sim_.trace().record(sim_.now(), TraceCategory::kBoot, mid_,
                      sim::TracePayload{}.with_status(
                          client_initiated ? sim::TraceStatus::kDie
                                           : sim::TraceStatus::kKilled));
  host_.kill_client();
  client_patterns_.clear();
  indexed_used_.fill(false);
  for (auto& [tid, p] : pending_) stop_probing(p);
  if (probe_wheel_armed_) {
    sim_.cancel(probe_wheel_timer_);
    probe_wheel_armed_ = false;
  }
  pending_.clear();
  completions_.clear();
  accepts_.clear();
  delivered_.clear();
  completed_lru_.clear();
  clear_held_frame();
  handler_busy_ = false;
  handler_open_ = true;
  open_change_pending_ = false;
  core_image_.clear();
  load_pattern_ = 0;
  boot_min_tid_ = next_tid_;
  ++death_epoch_;
  admit_window_start_ = 0;
  admit_offers_ = 0;
  anycast_.clear();
  ewma_service_ = 0;
  ewma_offers_ = 0;
  transport_.reset();
}

// ===================================================================
// Transport callbacks

proto::DispositionResult Kernel::classify(const net::Frame& f) {
  if (f.request) {
    const Pattern p = f.request->pattern & kPatternMask;
    const Tid tid = f.request->tid;
    if (net::is_reserved_pattern(p)) {
      // Reserved patterns are bound to kernel routines whose execution
      // "cannot be impeded by the client handler state" (§3.4.3).
      if (!reserved_bound(p)) {
        return {proto::Disposition::kError, net::NackReason::kUnadvertised,
                tid};
      }
      if (p == kSystemPattern && f.src != 0) {
        // Only machine 0 may administer reserved patterns (§3.5.4).
        return {proto::Disposition::kError, net::NackReason::kUnadvertised,
                tid};
      }
      return {proto::Disposition::kDeliver, {}, kNoTid};
    }
    if (!host_.has_client() || !pattern_bound(p)) {
      return {proto::Disposition::kError, net::NackReason::kUnadvertised, tid};
    }
    const std::uint8_t hint = note_offer_pressure();
    if (config_.admit_backlog_watermark > 0 &&
        delivered_.size() >= effective_backlog_watermark()) {
      // Admission control: the pending-accept backlog is past the
      // watermark, so shed this offer before any section processing and
      // tell the requester how hard to back off.
      metrics_.add(stats::Counter::kShedOffers);
      sim_.trace().record(sim_.now(), sim::TraceCategory::kOther, mid_,
                          sim::TracePayload{}
                              .with_peer(f.src)
                              .with_status(sim::TraceStatus::kShed)
                              .with_detail(static_cast<std::int64_t>(
                                  delivered_.size())));
      return {proto::Disposition::kBusy, {}, kNoTid,
              std::max<std::uint8_t>(hint, 1)};
    }
    if (handler_available_for_arrival() && !held_frame_) {
      return {proto::Disposition::kDeliver, {}, kNoTid};
    }
    if (config_.pipelined) {
      if (held_frame_ && held_frame_->src == f.src && held_frame_->request &&
          held_frame_->request->tid == tid) {
        return {proto::Disposition::kHold, {}, kNoTid};  // already holding it
      }
      if (!held_frame_) {
        set_held_frame(f);
        return {proto::Disposition::kHold, {}, kNoTid};
      }
    }
    if (hint > 0) metrics_.add(stats::Counter::kShedOffers);
    return {proto::Disposition::kBusy, {}, kNoTid, hint};
  }

  if (f.accept) {
    const Tid tid = f.accept->tid;
    auto it = pending_.find(tid);
    if (it == pending_.end()) {
      // Stale or forged ACCEPT (§3.6.1, §5.4): requests from before this
      // incarnation report CRASHED; completed/cancelled/forged report
      // CANCELLED.
      const net::NackReason r = (tid < boot_min_tid_)
                                    ? net::NackReason::kCrashed
                                    : net::NackReason::kCancelled;
      return {proto::Disposition::kError, r, tid};
    }
    if (it->second.server.mid != f.src) {
      // "An ACCEPT will fail if issued by a different client than that
      // named in the matching REQUEST" (§3.3.2 item 6).
      return {proto::Disposition::kError, net::NackReason::kWrongClient, tid};
    }
    return {proto::Disposition::kDeliver, {}, kNoTid};
  }

  // Late DATA frames and CANCEL queries are kernel-level: always deliver.
  return {proto::Disposition::kDeliver, {}, kNoTid};
}

std::uint8_t Kernel::note_offer_pressure() {
  if (config_.admit_offer_watermark <= 0) return 0;
  // The window is eight busy-retry intervals so it scales with the timing
  // preset (40 ms calibrated, 400 us fast) and with injected timer skew.
  const sim::Duration window = 8 * config_.timing.busy_retry_interval;
  if (window <= 0) return 0;
  if (sim_.now() - admit_window_start_ >= window) {
    if (config_.adaptive_admission) {
      // Fold the closing window's offered load into the EWMA before the
      // counter resets (doc/OVERLOAD.md §3.2, alpha = 1/8).
      if (ewma_offers_ == 0) {
        ewma_offers_ = admit_offers_;
      } else {
        int delta = (admit_offers_ - ewma_offers_) / 8;
        if (delta == 0 && admit_offers_ != ewma_offers_) {
          delta = admit_offers_ > ewma_offers_ ? 1 : -1;
        }
        ewma_offers_ += delta;
      }
    }
    admit_window_start_ = sim_.now();
    admit_offers_ = 0;
  }
  ++admit_offers_;
  const int watermark = effective_offer_watermark();
  const int level = admit_offers_ / watermark;
  std::uint8_t hint = static_cast<std::uint8_t>(std::min(level, 3));
  if (config_.adaptive_admission && hint == 0 && ewma_offers_ >= watermark) {
    // Sustained pressure remembered from earlier windows keeps a floor
    // under the hint even right after the counter reset.
    hint = 1;
  }
  return hint;
}

std::size_t Kernel::effective_backlog_watermark() const {
  if (!config_.adaptive_admission || ewma_service_ <= 0) {
    return config_.admit_backlog_watermark;
  }
  // Capacity per admission window: how many accepts this node completed
  // per window at the measured service rate. Clamped so a pathological
  // sample can neither close admission entirely nor disable shedding.
  const sim::Duration window = 8 * config_.timing.busy_retry_interval;
  const sim::Duration capacity =
      window / std::max<sim::Duration>(ewma_service_, 1);
  return static_cast<std::size_t>(
      std::clamp<sim::Duration>(capacity, 2, 64));
}

int Kernel::effective_offer_watermark() const {
  if (!config_.adaptive_admission || ewma_service_ <= 0) {
    return config_.admit_offer_watermark;
  }
  const sim::Duration window = 8 * config_.timing.busy_retry_interval;
  const sim::Duration capacity =
      window / std::max<sim::Duration>(ewma_service_, 1);
  return static_cast<int>(std::clamp<sim::Duration>(2 * capacity, 8, 512));
}

void Kernel::note_service_sample(sim::Duration d) {
  if (!config_.adaptive_admission || d < 0) return;
  if (ewma_service_ <= 0) {
    ewma_service_ = d;
    return;
  }
  sim::Duration delta = (d - ewma_service_) / 8;
  if (delta == 0 && d != ewma_service_) {
    // Integer division must not stick the EWMA short of a small target.
    delta = d > ewma_service_ ? 1 : -1;
  }
  ewma_service_ += delta;
}

// ===================================================================
// Anycast pool directory (doc/OVERLOAD.md §4)
//
// The directory is observational state: DISCOVER replies add members,
// BUSY-NACK shed hints and completion outcomes adjust per-member shed
// scores. It never touches timers, the RNG, or the trace, so seeding it
// cannot perturb trace hashes of workloads that never issue an anycast
// request.

namespace {
constexpr std::uint32_t kShedScoreCap = 1024;
}  // namespace

std::vector<Mid> Kernel::anycast_members(Pattern pattern) const {
  auto it = anycast_.find(pattern & kPatternMask);
  if (it == anycast_.end()) return {};
  return it->second.members;
}

std::optional<Mid> Kernel::anycast_pick(Pattern pattern) {
  auto it = anycast_.find(pattern & kPatternMask);
  if (it == anycast_.end() || it->second.members.empty()) return std::nullopt;
  AnycastPool& pool = it->second;
  const std::size_t n = pool.members.size();
  // Scan starting one past the previous pick so equal-score members are
  // visited round-robin; the first strictly-smaller score wins outright.
  std::size_t best = (pool.cursor + 1) % n;
  for (std::size_t step = 1; step < n; ++step) {
    const std::size_t i = (pool.cursor + 1 + step) % n;
    if (pool.shed[i] < pool.shed[best]) best = i;
  }
  pool.cursor = best;
  return pool.members[best];
}

void Kernel::anycast_note_member(Pattern pattern, Mid server,
                                 std::uint8_t hops) {
  if (server < 0 || server == mid_) return;  // never pool ourselves (§3.3)
  AnycastPool& pool = anycast_[pattern & kPatternMask];
  auto it = std::lower_bound(pool.members.begin(), pool.members.end(), server);
  if (it != pool.members.end() && *it == server) return;
  const auto idx = static_cast<std::size_t>(it - pool.members.begin());
  // Remote members start handicapped by their relay distance so the
  // least-shed pick keeps traffic on-segment until local members are
  // genuinely more loaded (doc/INTERNET.md). Local replies have hops 0.
  const std::uint32_t seed_score = std::min<std::uint32_t>(
      static_cast<std::uint32_t>(hops) * config_.anycast_hop_bias,
      kShedScoreCap);
  pool.members.insert(it, server);
  pool.shed.insert(pool.shed.begin() + static_cast<std::ptrdiff_t>(idx),
                   seed_score);
}

void Kernel::anycast_note_shed(Pattern pattern, Mid server,
                               std::uint8_t hint) {
  auto it = anycast_.find(pattern & kPatternMask);
  if (it == anycast_.end()) return;
  AnycastPool& pool = it->second;
  auto mit = std::lower_bound(pool.members.begin(), pool.members.end(),
                              server);
  if (mit == pool.members.end() || *mit != server) return;
  const auto idx = static_cast<std::size_t>(mit - pool.members.begin());
  pool.shed[idx] = std::min<std::uint32_t>(
      pool.shed[idx] + 1 + hint, kShedScoreCap);
}

void Kernel::anycast_note_result(Pattern pattern, Mid server,
                                 CompletionStatus status) {
  auto it = anycast_.find(pattern & kPatternMask);
  if (it == anycast_.end()) return;
  AnycastPool& pool = it->second;
  auto mit = std::lower_bound(pool.members.begin(), pool.members.end(),
                              server);
  if (mit == pool.members.end() || *mit != server) return;
  const auto idx = static_cast<std::size_t>(mit - pool.members.begin());
  switch (status) {
    case CompletionStatus::kCompleted:
      pool.shed[idx] /= 2;  // success decays accumulated pressure quickly
      break;
    case CompletionStatus::kCrashed:
      // Drop the member; the next DISCOVER after its reboot re-seeds it.
      pool.members.erase(mit);
      pool.shed.erase(pool.shed.begin() + static_cast<std::ptrdiff_t>(idx));
      if (pool.cursor >= pool.members.size()) pool.cursor = 0;
      break;
    case CompletionStatus::kTimedOut:
      pool.shed[idx] =
          std::min<std::uint32_t>(pool.shed[idx] + 16, kShedScoreCap);
      break;
    default:
      break;  // cancel / unadvertised say nothing about the member's load
  }
}

void Kernel::on_busy(Mid peer, const net::Frame& sent, std::uint8_t hint) {
  if (!sent.request) return;  // only REQUEST offers feed pool shed scores
  anycast_note_shed(sent.request->pattern & kPatternMask, peer, hint);
}

void Kernel::deliver(const net::Frame& f) {
  if (f.discover) {
    const auto& d = *f.discover;
    if (!d.is_reply) {
      const Pattern p = d.pattern & kPatternMask;
      const bool match = (host_.has_client() && pattern_bound(p)) ||
                         reserved_bound(p);
      if (match) {
        // Stagger replies by MID so they do not collide on the bus (§5.3).
        const sim::Duration delay =
            config_.timing.discover_stagger * (mid_ + 1);
        sim_.after(delay, [this, d, peer = f.src,
                           epoch = death_epoch_]() {
          if (epoch != death_epoch_) return;
          Frame rf;
          rf.discover = net::DiscoverSection{d.pattern, d.tid, true};
          transport_.send_control(peer, std::move(rf));
        });
      }
    } else {
      // Every DISCOVER reply seeds the anycast directory for its pattern,
      // even when the originating request already completed: a reply is
      // positive evidence that `src` serves the pattern right now.
      anycast_note_member(d.pattern & kPatternMask, f.src, f.hops);
      auto it = pending_.find(d.tid);
      if (it != pending_.end() && it->second.discover) {
        auto& mids = it->second.discovered;
        if (std::find(mids.begin(), mids.end(), f.src) == mids.end()) {
          mids.push_back(f.src);
        }
      }
    }
    return;  // DISCOVER frames carry nothing else
  }

  if (f.probe) {
    const auto& pb = *f.probe;
    if (!pb.is_reply) {
      const ServerKey key{f.src, pb.tid};
      const bool known = delivered_.count(key) > 0 ||
                         accepts_.count(key) > 0 ||
                         is_recently_completed(key);
      Frame rf;
      rf.probe = net::ProbeSection{pb.tid, true, known};
      transport_.send_control(f.src, std::move(rf));
      metrics_.add(stats::Counter::kProbeRepliesSent);
      sim_.trace().record(sim_.now(), TraceCategory::kProbe, mid_,
                          sim::TracePayload{}
                              .with_peer(f.src)
                              .with_tid(static_cast<std::int32_t>(pb.tid))
                              .with_status(known
                                               ? sim::TraceStatus::kReplyKnown
                                               : sim::TraceStatus::kReplyUnknown));
    } else {
      auto it = pending_.find(pb.tid);
      if (it != pending_.end()) {
        PendingRequest& p = it->second;
        p.probe_reply_seen = true;
        p.probe_misses = 0;
        if (!pb.known) {
          // The server rebooted and lost the request: it cannot escape
          // detection (§3.6.2).
          metrics_.add(stats::Counter::kCrashesDetected);
          fail_request(p, CompletionStatus::kCrashed);
        }
      }
    }
  }

  if (f.cancel) {
    const auto& c = *f.cancel;
    if (!c.is_reply) {
      const ServerKey key{f.src, c.tid};
      auto it = delivered_.find(key);
      bool ok = false;
      if (it != delivered_.end() && !it->second.accepting) {
        delivered_.erase(it);
        note_completed(key);
        ok = true;
      }
      Frame rf;
      rf.cancel = net::CancelSection{c.tid, true, ok};
      transport_.send_control(f.src, std::move(rf));
    } else {
      auto it = pending_.find(c.tid);
      if (it != pending_.end() && it->second.cancel_promise) {
        PendingRequest& p = it->second;
        auto promise = std::move(*p.cancel_promise);
        p.cancel_promise.reset();
        if (c.ok) {
          stop_probing(p);
          // Cancellation is the third way a REQUEST terminates; trace it
          // so invariant checkers see exactly one terminal event per tid.
          sim_.trace().record(sim_.now(), TraceCategory::kRequestCompleted,
                              mid_,
                              sim::TracePayload{}
                                  .with_peer(p.server.mid)
                                  .with_tid(static_cast<std::int32_t>(p.tid))
                                  .with_status(sim::TraceStatus::kCancelled));
          pending_.erase(it);  // no completion interrupt for a cancelled one
          promise.set(CancelStatus::kSuccess);
        } else {
          promise.set(CancelStatus::kFail);
        }
      }
    }
  }

  if (f.accept) handle_accept_info(f);
  if (f.request) on_request_delivered(f);
  if (!f.request && f.data_tag == net::DataTag::kRequestData) {
    handle_late_data(f);
  }
  if (f.data_ack != kNoTid) {
    auto it = pending_.find(f.data_ack);
    if (it != pending_.end()) {
      PendingRequest& p = it->second;
      p.late_put_acked = true;
      stop_data_timer(p);
      maybe_complete(p.tid);
    }
  }
}

void Kernel::on_acked(Mid peer, const net::Frame& sent) {
  if (sent.request) {
    auto it = pending_.find(sent.request->tid);
    if (it != pending_.end()) {
      PendingRequest& p = it->second;
      if (p.phase == PendingRequest::Phase::kInTransport) {
        p.phase = PendingRequest::Phase::kDelivered;
        start_probing(p.tid);
        if (p.cancel_requested && !p.cancel_sent) send_cancel_query(p);
      }
    }
  }
  if (sent.accept) {
    const ServerKey key{peer, sent.accept->tid};
    auto it = accepts_.find(key);
    if (it != accepts_.end()) {
      it->second.frame_acked = true;
      finish_accept(key, it->second);
    }
  }
}

void Kernel::on_failed(Mid peer, const net::Frame& sent,
                       net::NackReason reason) {
  if (sent.request) {
    auto it = pending_.find(sent.request->tid);
    if (it != pending_.end()) {
      CompletionStatus st = CompletionStatus::kCrashed;
      if (reason == net::NackReason::kUnadvertised) {
        st = CompletionStatus::kUnadvertised;
      } else if (reason == net::NackReason::kTimedOut) {
        st = CompletionStatus::kTimedOut;
      }
      fail_request(it->second, st);
    }
  }
  if (sent.accept) {
    const ServerKey key{peer, sent.accept->tid};
    auto it = accepts_.find(key);
    if (it != accepts_.end()) {
      OngoingAccept& oa = it->second;
      AcceptResult result;
      result.status = (reason == net::NackReason::kCrashed)
                          ? AcceptStatus::kCrashed
                          : AcceptStatus::kCancelled;
      sim_.trace().record(sim_.now(), TraceCategory::kAcceptCompleted, mid_,
                          sim::TracePayload{}
                              .with_peer(peer)
                              .with_tid(static_cast<std::int32_t>(
                                  sent.accept->tid))
                              .with_status(result.status ==
                                                   AcceptStatus::kCrashed
                                               ? sim::TraceStatus::kCrashed
                                               : sim::TraceStatus::kCancelled));
      auto promise = std::move(oa.promise);
      auto kernel_done = std::move(oa.kernel_done);
      accepts_.erase(it);
      delivered_.erase(key);
      note_completed(key);
      if (promise) promise->set(result);
      if (kernel_done) kernel_done(result);
    }
  }
  if (sent.cancel && !sent.cancel->is_reply) {
    auto it = pending_.find(sent.cancel->tid);
    if (it != pending_.end() && it->second.cancel_promise) {
      auto promise = std::move(*it->second.cancel_promise);
      it->second.cancel_promise.reset();
      promise.set(CancelStatus::kFail);
    }
  }
}

// ===================================================================
// Requester-side completion assembly

void Kernel::handle_accept_info(const net::Frame& f) {
  auto it = pending_.find(f.accept->tid);
  if (it == pending_.end()) return;  // stale piggybacked ACCEPT
  PendingRequest& p = it->second;
  if (p.accept_info) return;  // duplicate
  if (p.server.mid != f.src) return;
  p.accept_info = *f.accept;
  stop_probing(p);

  if (f.accept->carries_data && p.get_into) {
    const std::uint32_t n = std::min(
        p.get_size, static_cast<std::uint32_t>(f.data.size()));
    p.get_into->assign(f.data.begin(), f.data.begin() + n);
  }

  if (f.accept->needs_put_data && !p.put_data.empty()) {
    // Our REQUEST data did not survive (stripped after a BUSY encounter):
    // ship it now as a DATA frame; the server's DATA_ACK completes the
    // exchange. This is the paper's DATA+ACK packet followed by the final
    // ACK (§5.2.3). The DATA frame is a control frame with its own
    // retransmission: it must not wait in the alternating-bit slot behind
    // a queued REQUEST, or the server's blocked ACCEPT deadlocks it.
    p.late_put_sent = true;
    send_late_data(p);
  } else if (f.accept->needs_put_data) {
    p.late_put_acked = true;  // nothing to send after all
  }

  maybe_complete(p.tid);
}

void Kernel::send_late_data(PendingRequest& p) {
  Bytes chunk = p.put_data;
  if (p.accept_info && chunk.size() > p.accept_info->put_transferred) {
    chunk.resize(p.accept_info->put_transferred);
  }
  Frame df;
  df.data = std::move(chunk);
  df.data_tag = net::DataTag::kRequestData;
  df.data_tid = p.tid;
  transport_.send_control(p.server.mid, std::move(df));
  ++p.data_attempts;
  if (p.data_timer_armed) sim_.cancel(p.data_timer);
  p.data_timer_armed = true;
  const sim::Duration timeout =
      config_.timing.retransmit_interval +
      static_cast<sim::Duration>(p.put_data.size()) *
          config_.timing.retransmit_per_byte;
  const Tid tid = p.tid;
  p.data_timer = sim_.after(timeout, [this, tid, epoch = death_epoch_]() {
    if (epoch != death_epoch_) return;
    auto it = pending_.find(tid);
    if (it == pending_.end()) return;
    PendingRequest& pr = it->second;
    pr.data_timer_armed = false;
    if (pr.late_put_acked) return;
    if (pr.data_attempts > config_.timing.max_ack_retries) {
      fail_request(pr, CompletionStatus::kCrashed);
      return;
    }
    metrics_.add(stats::Counter::kRetransmits);
    sim_.trace().record(sim_.now(), TraceCategory::kRetransmit, mid_,
                        sim::TracePayload{}
                            .with_tid(static_cast<std::int32_t>(tid))
                            .with_status(sim::TraceStatus::kLateData));
    send_late_data(pr);
  });
}

void Kernel::stop_data_timer(PendingRequest& p) {
  if (p.data_timer_armed) {
    sim_.cancel(p.data_timer);
    p.data_timer_armed = false;
  }
}

void Kernel::maybe_complete(Tid tid) {
  auto it = pending_.find(tid);
  if (it == pending_.end()) return;
  PendingRequest& p = it->second;
  if (!p.accept_info) return;
  if (p.accept_info->needs_put_data && p.late_put_sent && !p.late_put_acked) {
    return;
  }
  complete_request(p, CompletionStatus::kCompleted, p.accept_info->arg,
                   p.accept_info->put_transferred,
                   p.accept_info->get_transferred);
}

void Kernel::complete_request(PendingRequest& p, CompletionStatus status,
                              std::int32_t arg, std::uint32_t put_done,
                              std::uint32_t get_done) {
  stop_probing(p);
  stop_data_timer(p);
  if (p.cancel_promise) {
    auto promise = std::move(*p.cancel_promise);
    p.cancel_promise.reset();
    promise.set(CancelStatus::kFail);
  }
  HandlerArgs args;
  args.reason = HandlerReason::kRequestCompletion;
  args.asker = RequesterSignature{mid_, p.tid};
  args.arg = arg;
  args.status = status;
  args.put_size = put_done;
  args.get_size = get_done;
  metrics_.add(stats::Counter::kRequestsCompleted);
  metrics_.observe(stats::Latency::kRequestLatency, sim_.now() - p.issued_at);
  sim::TraceStatus ts = sim::TraceStatus::kCompleted;
  if (status == CompletionStatus::kCrashed) ts = sim::TraceStatus::kCrashed;
  if (status == CompletionStatus::kUnadvertised)
    ts = sim::TraceStatus::kUnadvertised;
  if (status == CompletionStatus::kTimedOut) ts = sim::TraceStatus::kTimedOut;
  sim_.trace().record(sim_.now(), TraceCategory::kRequestCompleted, mid_,
                      sim::TracePayload{}
                          .with_peer(p.server.mid)
                          .with_tid(static_cast<std::int32_t>(p.tid))
                          .with_status(ts));
  anycast_note_result(p.server.pattern & kPatternMask, p.server.mid, status);
  pending_.erase(p.tid);
  post_completion(args);
}

void Kernel::fail_request(PendingRequest& p, CompletionStatus status) {
  complete_request(p, status, 0, 0, 0);
}

// ===================================================================
// Probes (§3.6.2)

void Kernel::start_probing(Tid tid) {
  auto it = pending_.find(tid);
  if (it == pending_.end()) return;
  PendingRequest& p = it->second;
  p.probe_misses = 0;
  p.awaiting_probe_reply = false;
  if (config_.timing.batched_timer_bookkeeping) {
    p.probe_active = true;
    p.next_probe_at = sim_.now() + config_.timing.probe_interval;
    probe_wheel_schedule(p.next_probe_at);
    return;
  }
  p.probe_armed = true;
  p.probe_timer =
      sim_.after(config_.timing.probe_interval,
                 [this, tid, epoch = death_epoch_]() {
                   if (epoch != death_epoch_) return;
                   probe_tick(tid);
                 });
}

void Kernel::stop_probing(PendingRequest& p) {
  p.probe_active = false;  // the wheel skips de-enrolled entries lazily
  if (p.probe_armed) {
    sim_.cancel(p.probe_timer);
    p.probe_armed = false;
  }
}

void Kernel::probe_wheel_schedule(sim::Time at) {
  if (probe_wheel_armed_ && probe_wheel_at_ <= at) return;
  if (probe_wheel_armed_) sim_.cancel(probe_wheel_timer_);
  probe_wheel_armed_ = true;
  probe_wheel_at_ = at;
  probe_wheel_timer_ = sim_.at(at, [this, epoch = death_epoch_]() {
    if (epoch != death_epoch_) return;
    probe_wheel_fire();
  });
}

void Kernel::probe_wheel_fire() {
  probe_wheel_armed_ = false;
  // Collect due TIDs first: probe_tick may fail a request and erase it
  // from pending_ mid-scan. The scratch vector is a member so steady-state
  // probe churn reuses its buffer instead of allocating per fire.
  std::vector<Tid>& due = probe_due_scratch_;
  due.clear();
  for (auto& [tid, p] : pending_) {
    if (p.probe_active && p.next_probe_at <= sim_.now()) due.push_back(tid);
  }
  for (Tid tid : due) {
    auto it = pending_.find(tid);
    if (it == pending_.end() || !it->second.probe_active) continue;
    it->second.probe_active = false;
    probe_tick(tid);
  }
  sim::Time next = 0;
  bool have = false;
  for (auto& [tid, p] : pending_) {
    if (!p.probe_active) continue;
    if (!have || p.next_probe_at < next) {
      next = p.next_probe_at;
      have = true;
    }
  }
  if (have) probe_wheel_schedule(next);
}

void Kernel::probe_tick(Tid tid) {
  auto it = pending_.find(tid);
  if (it == pending_.end()) return;
  PendingRequest& p = it->second;
  p.probe_armed = false;
  if (p.phase != PendingRequest::Phase::kDelivered || p.accept_info) return;
  if (p.awaiting_probe_reply && !p.probe_reply_seen) {
    if (++p.probe_misses >= config_.timing.max_probe_misses) {
      // "If several successive probes fail, a crash is reported" (§3.6.2).
      metrics_.add(stats::Counter::kCrashesDetected);
      fail_request(p, CompletionStatus::kCrashed);
      return;
    }
  }
  Frame f;
  f.probe = net::ProbeSection{tid, false, false};
  transport_.send_control(p.server.mid, std::move(f));
  metrics_.add(stats::Counter::kProbesSent);
  sim_.trace().record(sim_.now(), TraceCategory::kProbe, mid_,
                      sim::TracePayload{}
                          .with_peer(p.server.mid)
                          .with_tid(static_cast<std::int32_t>(tid))
                          .with_status(sim::TraceStatus::kQuery));
  p.awaiting_probe_reply = true;
  p.probe_reply_seen = false;
  if (config_.timing.batched_timer_bookkeeping) {
    p.probe_active = true;
    p.next_probe_at = sim_.now() + config_.timing.probe_interval;
    probe_wheel_schedule(p.next_probe_at);
    return;
  }
  p.probe_armed = true;
  p.probe_timer = sim_.after(config_.timing.probe_interval,
                             [this, tid, epoch = death_epoch_]() {
                               if (epoch != death_epoch_) return;
                               probe_tick(tid);
                             });
}

// ===================================================================
// Server-side arrival handling

void Kernel::on_request_delivered(const net::Frame& f) {
  const Pattern p = f.request->pattern & kPatternMask;
  if (net::is_reserved_pattern(p)) {
    serve_reserved(f);
    return;
  }
  DeliveredRequest dr;
  dr.requester = RequesterSignature{f.src, f.request->tid};
  dr.pattern = p;
  dr.arg = f.request->arg;
  dr.put_size = f.request->put_size;
  dr.get_size = f.request->get_size;
  dr.delivered_at = sim_.now();
  if (f.request->carries_data) {
    dr.data_present = true;
    dr.data = f.data;
  }
  delivered_[{f.src, f.request->tid}] = std::move(dr);
  sim_.trace().record(sim_.now(), TraceCategory::kRequestDelivered, mid_,
                      sim::TracePayload{}
                          .with_peer(f.src)
                          .with_tid(static_cast<std::int32_t>(f.request->tid)));
  dispatch_arrival(f);
}

void Kernel::dispatch_arrival(const net::Frame& f) {
  handler_busy_ = true;
  HandlerArgs args;
  args.reason = HandlerReason::kRequestArrival;
  args.asker = RequesterSignature{f.src, f.request->tid};
  args.arg = f.request->arg;
  args.invoked_pattern = f.request->pattern & kPatternMask;
  args.put_size = f.request->put_size;
  args.get_size = f.request->get_size;
  cpu_.run(config_.timing.context_switch, CostCategory::kContextSwitch,
           [this, args, epoch = death_epoch_]() {
             if (epoch != death_epoch_) return;
             if (!host_.has_client()) {
               handler_busy_ = false;
               return;
             }
             metrics_.add(stats::Counter::kHandlerInvocations);
             sim_.trace().record(
                 sim_.now(), TraceCategory::kHandlerInvoked, mid_,
                 sim::TracePayload{}.with_status(sim::TraceStatus::kArrival));
             host_.invoke_handler(args);
           });
}

// ===================================================================
// Kernel-served reserved patterns: booting & killing (§3.5)

bool Kernel::reserved_bound(Pattern p) const {
  if (p == kill_pattern_) return true;
  if (p == kSystemPattern) return true;
  if (load_pattern_ != 0 && p == load_pattern_) return true;
  if (boot_patterns_.count(p)) {
    // Boot patterns are advertised only while the node is clientless and
    // not already being loaded (§3.5.2-§3.5.3).
    return !host_.has_client() && load_pattern_ == 0;
  }
  return false;
}

void Kernel::respond_kernel_accept(const net::Frame& f, std::int32_t arg,
                                   Bytes reply_data) {
  const auto& rq = *f.request;
  const std::uint32_t get_n = std::min(
      static_cast<std::uint32_t>(reply_data.size()), rq.get_size);
  Frame af;
  af.accept =
      net::AcceptSection{rq.tid, arg, rq.carries_data ? rq.put_size : 0,
                         get_n, false, get_n > 0};
  if (get_n > 0) {
    reply_data.resize(get_n);
    af.data = std::move(reply_data);
    af.data_tag = net::DataTag::kAcceptData;
    af.data_tid = rq.tid;
  }
  // The kernel answers synchronously, so the REQUEST's ack is still owed
  // and the composite response is reliable via duplicate replay.
  transport_.send_control(f.src, std::move(af), /*store_as_response=*/true);
}

void Kernel::arm_load_deadline() {
  // While load_pattern_ is set the boot pattern stops matching (§3.5.2),
  // so a parent that dies or gives up mid-LOAD would otherwise leave the
  // free machine unbootable forever — the same wedge class as the
  // unbounded-ACCEPT wait of §3.3.2. Every load step (the boot GET and
  // each core-image PUT chunk) re-arms a deadline of one record lifetime
  // plus two retransmission spans; if the sequence stalls that long with
  // no client booted, the load is abandoned and the machine returns to
  // the free pool.
  const sim::Duration grace = config_.timing.record_lifetime() +
                              2 * config_.timing.retransmit_span();
  load_started_at_ = sim_.now();
  sim_.after(grace, [this, started = load_started_at_,
                     epoch = death_epoch_]() {
    if (epoch != death_epoch_) return;
    if (load_pattern_ == 0 || host_.has_client()) return;
    if (load_started_at_ != started) return;  // a later step re-armed it
    sim_.trace().record(
        sim_.now(), TraceCategory::kBoot, mid_,
        sim::TracePayload{}.with_status(sim::TraceStatus::kLoadAbandoned));
    metrics_.add(stats::Counter::kLoadsAbandoned);
    load_pattern_ = 0;
    core_image_.clear();
  });
}

void Kernel::serve_reserved(const net::Frame& f) {
  const Pattern p = f.request->pattern & kPatternMask;
  const auto& rq = *f.request;

  if (boot_patterns_.count(p) && !host_.has_client() && load_pattern_ == 0) {
    // GET <MID, BOOT_PATTERN>: allocate a LOAD pattern and return it
    // (§3.5.2). Boot patterns stop matching until the client dies.
    load_pattern_ = (uids_.next(mid_) | kReservedBit) &
                    ~kWellKnownBit & kPatternMask;
    core_image_.clear();
    sim_.trace().record(sim_.now(), TraceCategory::kBoot, mid_,
                        sim::TracePayload{}
                            .with_peer(f.src)
                            .with_status(sim::TraceStatus::kLoadAllocated));
    respond_kernel_accept(f, 0, pattern_to_bytes(load_pattern_));
    arm_load_deadline();
    return;
  }

  if (load_pattern_ != 0 && p == load_pattern_) {
    if (rq.put_size > 0) {
      // PUT <MID, LOAD_PATTERN>: the next chunk of the core image.
      if (rq.carries_data) {
        core_image_.insert(core_image_.end(), f.data.begin(), f.data.end());
        respond_kernel_accept(f, 0, {});
        arm_load_deadline();
      } else {
        // The chunk was stripped en route: ask for a late DATA frame.
        Frame af;
        af.accept = net::AcceptSection{rq.tid, 0, rq.put_size, 0, true, false};
        OngoingAccept oa;
        oa.requester = RequesterSignature{f.src, rq.tid};
        oa.waiting_put_data = true;
        oa.issued_at = sim_.now();
        oa.kernel_on_data = [this](const Bytes& d) {
          core_image_.insert(core_image_.end(), d.begin(), d.end());
          arm_load_deadline();
        };
        accepts_.emplace(ServerKey{f.src, rq.tid}, std::move(oa));
        transport_.send_sequenced(f.src, std::move(af));
        arm_accept_data_deadline(ServerKey{f.src, rq.tid});
      }
      return;
    }
    // SIGNAL <MID, LOAD_PATTERN>: first = start the client; second = the
    // parent kills it (§3.5.2).
    respond_kernel_accept(f, 0, {});
    if (!host_.has_client()) {
      ++boots_;
      metrics_.add(stats::Counter::kBoots);
      sim_.trace().record(sim_.now(), TraceCategory::kBoot, mid_,
                          sim::TracePayload{}
                              .with_peer(f.src)
                              .with_status(sim::TraceStatus::kBooting));
      Bytes image = core_image_;
      const Mid parent = f.src;
      sim_.after(0, [this, image, parent, epoch = death_epoch_]() {
        if (epoch != death_epoch_) return;
        host_.boot_client(image, parent);
      });
    } else {
      // Let the response leave before tearing the node down.
      sim_.after(2'500, [this, epoch = death_epoch_]() {
        if (epoch != death_epoch_) return;
        reset_for_death(/*client_initiated=*/false);
      });
    }
    return;
  }

  if (p == kill_pattern_) {
    // SIGNAL <MID, KILL_PATTERN>: unconditional death (§3.5.3).
    respond_kernel_accept(f, 0, {});
    if (host_.has_client() || load_pattern_ != 0) {
      sim_.after(2'500, [this, epoch = death_epoch_]() {
        if (epoch != death_epoch_) return;
        reset_for_death(/*client_initiated=*/false);
      });
    }
    return;
  }

  if (p == kSystemPattern) {
    // Machine 0 administers reserved patterns (§3.5.4).
    const Pattern target = pattern_from_bytes(f.data);
    switch (rq.arg) {
      case kSystemAddBoot:
        boot_patterns_.insert((target | kReservedBit) & kPatternMask);
        break;
      case kSystemDeleteBoot:
        boot_patterns_.erase((target | kReservedBit) & kPatternMask);
        break;
      case kSystemReplaceKill:
        kill_pattern_ = (target | kReservedBit) & kPatternMask;
        break;
      default:
        break;
    }
    respond_kernel_accept(f, 0, {});
    return;
  }

  // A reserved pattern that stopped being bound between classify and
  // deliver: answer nothing; the requester's probes will sort it out.
}

// ===================================================================

bool Kernel::is_recently_completed(ServerKey k) const {
  return std::find(completed_lru_.begin(), completed_lru_.end(), k) !=
         completed_lru_.end();
}

void Kernel::note_completed(ServerKey k) {
  completed_lru_.push_back(k);
  while (completed_lru_.size() > config_.completed_lru) {
    completed_lru_.pop_front();
  }
}

}  // namespace soda
