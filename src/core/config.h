// Per-node configuration and network-wide unique-id generation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "proto/timing.h"

namespace soda {

/// Configuration of one SODA node.
struct NodeConfig {
  /// Maximum uncompleted REQUESTs a requester may hold (§3.3.2 item 5).
  /// The paper's measurements use 3.
  int max_requests = 3;

  /// Maximum message (buffer) size in bytes. 1000 PDP-11 words.
  std::uint32_t max_message_bytes = 2000;

  /// Pipelined kernel: hold a REQUEST that meets a BUSY handler in the
  /// input buffer instead of NACKing, and have ENDHANDLER re-check the
  /// buffer (§5.2.3 "the pipelined version").
  bool pipelined = false;

  /// How long a held REQUEST may sit in the input buffer before the
  /// kernel gives up and BUSY-NACKs after all.
  sim::Duration input_buffer_hold = 6'000;

  /// Size of the server-side LRU of recently completed requester
  /// signatures (backs stale-ACCEPT and probe answers).
  std::size_t completed_lru = 64;

  /// Faithful §5.4 pattern table: the paper's implementation lacked
  /// associative hardware, so the first 8 bits of a pattern index a
  /// 256-entry array and "if two patterns are advertised that are
  /// identical in the first eight bits, the second overwrites the first."
  /// Off by default (the clean §3.4 semantics); switch on to reproduce
  /// the 1984 artefact.
  bool indexed_pattern_table = false;

  /// §6.15: mix a per-node random component into GETUNIQUEID patterns so
  /// they are hard to guess while staying network-wide unique.
  bool randomized_unique_ids = false;

  /// First transaction id this kernel incarnation may issue (also the
  /// stale-accept floor, §6). Inside one process the kernel object
  /// survives crash() and next_tid_ stays monotone; a *re-executed*
  /// process starts from scratch, so a real-process harness (src/fleet)
  /// must seed each incarnation above every TID the previous one could
  /// have issued — the analog of the paper's clock-derived §5.4 counter.
  /// Values < 1 are clamped to 1.
  net::Tid initial_tid = 1;

  /// --- admission control (overload shedding, doc/OVERLOAD.md) ---
  /// Shed REQUEST offers with an early BUSY-NACK (before any section
  /// processing) once the pending-accept backlog reaches this depth; the
  /// NACK carries a shed hint the requester folds into its backoff floor.
  /// 0 disables. The default never trips under the paper's workloads
  /// (a serial handler keeps the backlog at 1-2).
  std::size_t admit_backlog_watermark = 8;

  /// Shed hint scale for the incoming-offer rate: when more than this
  /// many REQUEST offers land within one admission window (eight busy
  /// retry intervals, so the window tracks the timing preset), BUSY NACKs
  /// start carrying a hint of offers/watermark (capped at 3). 0 disables.
  int admit_offer_watermark = 48;

  /// Load-adaptive admission (doc/OVERLOAD.md §3.2): derive the two
  /// watermarks above from EWMAs of measured per-accept service time and
  /// per-window offered load instead of using them as fixed constants.
  /// Capacity per window C = window / ewma_service; the effective backlog
  /// watermark is clamp(C, 2, 64) and the effective offer watermark is
  /// clamp(2*C, 8, 512). The fixed values act as the pre-measurement
  /// seed. Off by default: the constants are what the pinned trace hashes
  /// were recorded under.
  bool adaptive_admission = false;

  /// Model the NIC's pattern-address filter (§5.3): the station tells the
  /// bus which broadcast DISCOVER queries it matches, and non-matching
  /// queries never interrupt the kernel at all. Without it every DISCOVER
  /// costs protocol_recv CPU and a scheduled event at all N-1 stations —
  /// the dominant O(N^2) wall in all-to-all discovery at scale. Off by
  /// default: the promiscuous path is the 1984-faithful model.
  bool nic_pattern_filter = false;

  /// Anycast distance penalty (doc/INTERNET.md): a pool member seeded
  /// from a DISCOVER reply that crossed gateways starts with a shed score
  /// of hops * anycast_hop_bias, so the least-shed pick prefers same-
  /// segment members until local pressure outweighs the extra hops. Local
  /// replies arrive with hops == 0, so single-segment behaviour (and the
  /// pinned trace hashes) are untouched.
  std::uint32_t anycast_hop_bias = 4;

  TimingModel timing;
};

/// Network-wide unique pattern source (§5.4): the paper concatenates an
/// 8-bit machine serial number with a 32-bit counter whose initial value
/// comes from a monotonic clock on the development VAX.
///
/// Epoch 2: the counter is per-serial, not shared. A shared monotone
/// counter consumed at runtime (get_unique_id, the reboot load-pattern
/// path) would make every pattern depend on the global cross-partition
/// execution order — exactly the coupling the partition-local RNG
/// streams remove. Per-serial sequences make each node's patterns a pure
/// function of its own call count, and the layout below keeps them
/// injective across (serial, seq), so network-wide uniqueness survives.
class UniqueIdSource {
 public:
  /// A fresh pattern for machine `serial`. Never has the RESERVED or
  /// WELL-KNOWN bits set, so client-made names cannot collide with either
  /// kernel patterns or published names (§3.4.2). Layout (low to high):
  /// serial bits 0-7, a 24-bit per-serial sequence, serial bits 8-15 —
  /// bits 40+ stay clear for the kernel's uniqueness-salt rider.
  net::Pattern next(net::Mid serial) {
    const auto s =
        static_cast<std::size_t>(static_cast<std::uint32_t>(serial));
    if (s >= seq_.size()) seq_.resize(s + 1, 1);
    const std::uint64_t seq = seq_[s]++;
    const auto serial_bits = static_cast<std::uint64_t>(serial);
    net::Pattern p = ((serial_bits >> 8) & 0xFFull) << 32 |
                     (seq & 0xFFFFFFull) << 8 | (serial_bits & 0xFFull);
    return p & ~(net::kReservedBit | net::kWellKnownBit) & net::kPatternMask;
  }

  /// Pre-size the per-serial table for serials [0, count). Topology
  /// constructors (Network/Internetwork::add_node) call this at setup so
  /// runtime next() calls from concurrently executing partitions touch
  /// disjoint, already-allocated slots — next() growing the table mid-run
  /// would be a data race.
  void reserve_serials(std::size_t count) {
    if (count > seq_.size()) seq_.resize(count, 1);
  }

 private:
  std::vector<std::uint32_t> seq_;  // next sequence value per serial
};

}  // namespace soda
