// A SODA node: one kernel (co)processor plus at most one client program,
// sharing a single multiplexed CPU as in the paper's implementation (§5.2).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/client.h"
#include "core/kernel.h"

namespace soda {

/// Stands in for the development VAX's program store: a "core image" on
/// the wire is the program's registered name, and booting instantiates the
/// registered factory (see DESIGN.md on this substitution).
using ProgramFactory = std::function<std::unique_ptr<Client>()>;

class Node final : public KernelHost {
 public:
  Node(sim::Simulator& sim, net::Bus& bus, Mid mid, NodeConfig config,
       UniqueIdSource& uids)
      : sim_(sim),
        partition_(sim.current_partition()),
        cpu_(sim, ledger_),
        kernel_(sim, bus, mid, std::move(config), uids, cpu_, *this) {
    cpu_.bind_metrics(&sim.metrics().node(mid));
  }

  Mid mid() const { return kernel_.mid(); }
  Kernel& kernel() { return kernel_; }
  NodeCpu& cpu() { return cpu_; }
  CostLedger& ledger() { return ledger_; }
  Client* client() { return client_.get(); }

  /// Directly install a client program (tests and examples use this in
  /// place of the network boot protocol).
  void install_client(std::unique_ptr<Client> c, Mid parent) {
    // Boot-time client scheduling belongs on this node's wheel even when
    // triggered from outside an event (tests, chaos reboot injections).
    sim::ScopedPartition guard(sim_, partition_);
    client_ = std::move(c);
    client_->bind(this);
    kernel_.client_booted(parent);
  }

  /// Make a program bootable over the network via the LOAD protocol.
  void register_program(std::string name, ProgramFactory factory) {
    programs_[std::move(name)] = std::move(factory);
  }

  /// Hard failure: lose all kernel and client state (§3.6).
  void crash() {
    sim::ScopedPartition guard(sim_, partition_);
    kernel_.crash();
  }

  sim::Simulator& simulator() { return sim_; }

  /// Partition wheel this node's events live on (captured at construction;
  /// 0 on an unpartitioned simulator). Fault injectors schedule their
  /// crash/reboot events here so external interventions don't register as
  /// cross-partition lookahead violations.
  int partition() const { return partition_; }

  // ---- KernelHost ----
  void boot_client(const Bytes& image, Mid parent) override {
    std::string name(image.size(), '\0');
    for (std::size_t i = 0; i < image.size(); ++i) {
      name[i] = static_cast<char>(std::to_integer<unsigned char>(image[i]));
    }
    auto it = programs_.find(name);
    if (it == programs_.end()) {
      sim_.trace().record(sim_.now(), sim::TraceCategory::kBoot, mid(),
                          sim::TracePayload{}.with_status(
                              sim::TraceStatus::kUnknownImage));
      return;
    }
    install_client(it->second(), parent);
  }

  void kill_client() override {
    if (!client_) return;
    client_->mark_dead();
    // The dead program's memory persists on the node (its core image is
    // only replaced by the next boot) — which also keeps test/example
    // inspection of a finished client's state valid, and lets coroutines
    // still unwinding on it do so safely.
    dead_clients_.push_back(std::move(client_));
    client_.reset();
  }

  bool has_client() const override { return client_ != nullptr; }

  void invoke_handler(const HandlerArgs& args) override {
    if (client_) client_->invoke_handler(args);
  }

  void drain_client_deferred() override {
    if (client_) client_->drain_deferred();
  }

 private:
  sim::Simulator& sim_;
  int partition_ = 0;
  CostLedger ledger_;
  NodeCpu cpu_;
  Kernel kernel_;
  std::unique_ptr<Client> client_;
  std::vector<std::unique_ptr<Client>> dead_clients_;
  std::unordered_map<std::string, ProgramFactory> programs_;
};

}  // namespace soda
