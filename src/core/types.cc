#include "core/types.h"

namespace soda {

const char* to_string(HandlerReason r) {
  switch (r) {
    case HandlerReason::kRequestArrival: return "REQUEST_ARRIVAL";
    case HandlerReason::kRequestCompletion: return "REQUEST_COMPLETION";
    case HandlerReason::kBooting: return "BOOTING";
  }
  return "?";
}

const char* to_string(CompletionStatus s) {
  switch (s) {
    case CompletionStatus::kCompleted: return "REQUEST_COMPLETED";
    case CompletionStatus::kCrashed: return "REQUEST_CRASHED";
    case CompletionStatus::kUnadvertised: return "REQUEST_UNADVERTISED";
    case CompletionStatus::kTimedOut: return "REQUEST_TIMEDOUT";
  }
  return "?";
}

const char* to_string(AcceptStatus s) {
  switch (s) {
    case AcceptStatus::kSuccess: return "SUCCESS";
    case AcceptStatus::kCancelled: return "CANCELLED";
    case AcceptStatus::kCrashed: return "CRASHED";
  }
  return "?";
}

const char* to_string(CancelStatus s) {
  switch (s) {
    case CancelStatus::kSuccess: return "SUCCESS";
    case CancelStatus::kFail: return "FAIL";
  }
  return "?";
}

}  // namespace soda
