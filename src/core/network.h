// Assembly of a whole SODA network: simulator + bus + nodes.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/node.h"
#include "net/bus.h"
#include "sim/simulator.h"

namespace soda {

struct NetworkOptions {
  std::uint64_t seed = 1;
  net::BusConfig bus{};
};

class Network {
 public:
  using Options = NetworkOptions;

  explicit Network(Options options = {})
      : sim_(options.seed), bus_(sim_, options.bus) {}

  /// Add a node; MIDs are assigned 0, 1, 2, ... in creation order. MID 0
  /// carries the SYSTEM privilege (§3.5.4), so create the manager first.
  Node& add_node(NodeConfig config = {}) {
    auto mid = static_cast<Mid>(nodes_.size());
    // Round-robin wheel affinity when the simulator is partitioned (a
    // no-op guard otherwise): the node's kernel timers, deliveries, and
    // client events all live on its wheel.
    sim::ScopedPartition guard(
        sim_, static_cast<int>(mid) % sim_.partition_count());
    // Pre-size the per-serial pattern sequences here (setup time) so
    // runtime get_unique_id calls never grow the table concurrently.
    uids_.reserve_serials(static_cast<std::size_t>(mid) + 1);
    nodes_.push_back(
        std::make_unique<Node>(sim_, bus_, mid, std::move(config), uids_));
    return *nodes_.back();
  }

  /// Create a node and immediately install a client of type T on it.
  template <typename T, typename... Args>
  T& spawn(NodeConfig config, Args&&... args) {
    Node& n = add_node(std::move(config));
    auto client = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *client;
    n.install_client(std::move(client), n.mid());
    return ref;
  }

  Node& node(Mid mid) {
    if (mid < 0 || static_cast<std::size_t>(mid) >= nodes_.size()) {
      throw std::out_of_range("no such node");
    }
    return *nodes_[static_cast<std::size_t>(mid)];
  }
  std::size_t size() const { return nodes_.size(); }

  sim::Simulator& sim() { return sim_; }
  net::Bus& bus() { return bus_; }
  UniqueIdSource& uids() { return uids_; }

  /// Run the simulation for a slice of simulated time.
  void run_for(sim::Duration d) { sim_.run_until(sim_.now() + d); }

  /// Propagate the first exception any client program hit.
  void check_clients() {
    for (auto& n : nodes_) {
      if (n->client()) n->client()->rethrow_error();
    }
  }

 private:
  sim::Simulator sim_;
  net::Bus bus_;
  UniqueIdSource uids_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace soda
