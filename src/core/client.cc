#include "core/client.h"

#include "core/node.h"

namespace soda {

void Client::bind(Node* node) {
  node_ = node;
  kernel_ = &node->kernel();
  sim_ = &node->simulator();
}

void Client::start(Mid parent) {
  HandlerArgs args;
  args.reason = HandlerReason::kBooting;
  args.parent = parent;
  invoke_handler(args);
}

void Client::invoke_handler(const HandlerArgs& args) {
  in_handler_ = true;
  handler_ended_early_ = false;
  ++handler_invocation_;
  handler_run_ = run_handler(args, handler_invocation_);
}

sim::Task Client::run_handler(HandlerArgs args, std::uint64_t invocation) {
  try {
    if (args.reason == HandlerReason::kBooting) {
      co_await on_boot(args.parent);
    } else {
      co_await on_handler(args);
    }
  } catch (...) {
    if (!error_) error_ = std::current_exception();
  }
  // If end_handler_early() demoted this invocation (or a newer invocation
  // has since taken over the handler), the ENDHANDLER below already
  // happened — running it again would corrupt the newer invocation.
  if (invocation != handler_invocation_ || handler_ended_early_) {
    co_return;
  }
  in_handler_ = false;
  if (args.reason == HandlerReason::kBooting && !task_started_) {
    // "When that handler completes and executes ENDHANDLER, the new client
    // begins executing its task" (§3.5.2). The task runs synchronously to
    // its first suspension, then ENDHANDLER lets queued interrupts in.
    task_started_ = true;
    task_run_ = run_task_wrapper();
  }
  kernel_->endhandler();
}

void Client::end_handler_early() {
  if (!in_handler_) return;
  handler_ended_early_ = true;
  in_handler_ = false;
  if (!task_started_) {
    // The boot handler blocked: the paper starts the task at ENDHANDLER,
    // and the trick *is* an ENDHANDLER.
    task_started_ = true;
    task_run_ = run_task_wrapper();
  }
  kernel_->endhandler();
}

sim::ResumeExecutor Client::task_gated_executor() {
  auto alive = alive_;
  return [this, alive](std::coroutine_handle<> h) {
    if (!*alive) {
      h.destroy();
      return;
    }
    if (in_handler_) {
      deferred_.push_back(h);
    } else {
      h.resume();
    }
  };
}

sim::Task Client::run_task_wrapper() {
  try {
    co_await on_task();
  } catch (...) {
    if (!error_) error_ = std::current_exception();
  }
  // "A Die call is implicit at the end of the Task procedure" (§4.1).
  if (kernel_ && !kernel_->client_dead() && node_ && node_->client() == this) {
    kernel_->die();
  }
}

void Client::drain_deferred() {
  while (!in_handler_ && !deferred_.empty()) {
    auto h = deferred_.front();
    deferred_.pop_front();
    h.resume();
  }
}

sim::ResumeExecutor Client::executor_for_current_context() {
  auto alive = alive_;
  if (in_handler_) {
    // The handler itself is the blocked party: resume inline.
    return [alive](std::coroutine_handle<> h) {
      if (*alive) {
        h.resume();
      } else {
        h.destroy();
      }
    };
  }
  // Task context: while the handler is BUSY the task must not run.
  return [this, alive](std::coroutine_handle<> h) {
    if (!*alive) {
      h.destroy();
      return;
    }
    if (in_handler_) {
      deferred_.push_back(h);
    } else {
      h.resume();
    }
  };
}

}  // namespace soda
