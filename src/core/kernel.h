// The SODA kernel (chapter 3): ten primitives, handler management, naming,
// process control, and crash semantics, layered on the reliable transport.
//
// One Kernel instance models the node's SODA (co)processor. The attached
// client calls the primitive methods; the KernelHost interface (implemented
// by Node) lets the kernel start, interrupt and kill the client program.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "core/types.h"
#include "proto/transport.h"
#include "sim/coro.h"
#include "sim/simulator.h"

namespace soda {

/// Services the kernel needs from the node hosting it.
class KernelHost {
 public:
  virtual ~KernelHost() = default;
  /// Load and start a client from a core image (invokes its boot handler).
  virtual void boot_client(const Bytes& core_image, Mid parent) = 0;
  /// Destroy the running client (kill / DIE).
  virtual void kill_client() = 0;
  virtual bool has_client() const = 0;
  /// Run the client handler (the kernel has already charged the context
  /// switch and marked the handler BUSY).
  virtual void invoke_handler(const HandlerArgs& args) = 0;
  /// Resume client-task continuations deferred while the handler ran.
  virtual void drain_client_deferred() = 0;
};

class Kernel {
 public:
  // Well-known reserved patterns (§3.5.3–§3.5.4). BOOT and KILL can be
  // changed at run time by MID 0 through the SYSTEM pattern.
  static constexpr Pattern kKillPattern = kReservedBit | kWellKnownBit | 0x01;
  static constexpr Pattern kDefaultBootPattern =
      kReservedBit | kWellKnownBit | 0x02;
  static constexpr Pattern kSystemPattern = kReservedBit | kWellKnownBit | 0x03;

  // SYSTEM request arguments (§3.5.4).
  static constexpr std::int32_t kSystemAddBoot = 1;
  static constexpr std::int32_t kSystemDeleteBoot = 2;
  static constexpr std::int32_t kSystemReplaceKill = 3;

  Kernel(sim::Simulator& sim, net::Bus& bus, Mid mid, NodeConfig config,
         UniqueIdSource& uids, NodeCpu& cpu, KernelHost& host);

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  Mid mid() const { return mid_; }
  const NodeConfig& config() const { return config_; }
  NodeCpu& cpu() { return cpu_; }
  proto::Transport& transport() { return transport_; }

  // ------------------------------------------------------------------
  // Primitive 4: REQUEST (§3.3.1). Non-blocking. Returns the TID, or
  // nullopt when MAXREQUESTS are already uncompleted (the kernel ignores
  // the request; counting is the client's responsibility, §3.7.4).
  // `server.mid == kBroadcastMid` performs a DISCOVER (§3.4.4): matching
  // MIDs are written into `get_into` as 32-bit little-endian integers.
  struct RequestParams {
    ServerSignature server;
    std::int32_t arg = 0;
    Bytes put_data{};            // requester -> server payload
    std::uint32_t get_size = 0;  // bytes wanted back
    Bytes* get_into = nullptr;   // client buffer for the reply data

    // Fluent builders mirroring the paper's SIGNAL/PUT/GET/EXCHANGE
    // taxonomy (§4.1.1). Prefer these over brace-initialization — field
    // order stops mattering and call sites read like the primitives.
    static RequestParams signal(ServerSignature s, std::int32_t arg = 0) {
      return {s, arg, {}, 0, nullptr};
    }
    static RequestParams put(ServerSignature s, Bytes data,
                             std::int32_t arg = 0) {
      return {s, arg, std::move(data), 0, nullptr};
    }
    static RequestParams get(ServerSignature s, std::uint32_t get_size,
                             Bytes* into, std::int32_t arg = 0) {
      return {s, arg, {}, get_size, into};
    }
    static RequestParams exchange(ServerSignature s, Bytes out,
                                  std::uint32_t get_size, Bytes* in,
                                  std::int32_t arg = 0) {
      return {s, arg, std::move(out), get_size, in};
    }
    /// Broadcast DISCOVER (§3.4.4): matching MIDs land in `into`.
    static RequestParams discover(Pattern pattern, std::uint32_t get_size,
                                  Bytes* into) {
      return {ServerSignature{net::kBroadcastMid, pattern}, 0, {}, get_size,
              into};
    }
    RequestParams& with_arg(std::int32_t a) {
      arg = a;
      return *this;
    }
  };
  std::optional<Tid> request(RequestParams params);

  // Primitive 5: ACCEPT (§3.3.2). Blocking (bounded). Completes the named
  // request, exchanging data both ways.
  struct AcceptParams {
    RequesterSignature requester;
    std::int32_t arg = 0;
    Bytes* take_into = nullptr;      // server buffer for requester's data
    std::uint32_t max_take = 0;      // capacity of that buffer
    Bytes reply_data{};              // server -> requester payload

    // Fluent builders matching the ACCEPT variants (§4.1.1).
    static AcceptParams signal(RequesterSignature rs, std::int32_t arg = 0) {
      return {rs, arg, nullptr, 0, {}};
    }
    static AcceptParams take(RequesterSignature rs, Bytes* into,
                             std::uint32_t max_take, std::int32_t arg = 0) {
      return {rs, arg, into, max_take, {}};
    }
    static AcceptParams reply(RequesterSignature rs, Bytes data,
                              std::int32_t arg = 0) {
      return {rs, arg, nullptr, 0, std::move(data)};
    }
    static AcceptParams exchange(RequesterSignature rs, Bytes* into,
                                 std::uint32_t max_take, Bytes data,
                                 std::int32_t arg = 0) {
      return {rs, arg, into, max_take, std::move(data)};
    }
    /// REJECT (§4.1.2): NIL buffers, argument -1.
    static AcceptParams reject(RequesterSignature rs) {
      return {rs, -1, nullptr, 0, {}};
    }
  };
  sim::Future<AcceptResult> accept(AcceptParams params);

  // Primitive 6: CANCEL (§3.3.3). Blocking (bounded). Fails whenever the
  // request completed first.
  sim::Future<CancelStatus> cancel(Tid tid);

  // Primitives 1-3: naming (§3.4).
  bool advertise(Pattern p);    // false for reserved patterns
  bool unadvertise(Pattern p);  // false for reserved / not-advertised
  Pattern get_unique_id();
  bool advertised(Pattern p) const;

  // Primitives 7-9: handler control (§3.3.4). From inside the handler,
  // open/close take effect at ENDHANDLER.
  void open();
  void close();
  /// Called by the client framework when the handler coroutine finishes.
  void endhandler();

  // Primitive 10: DIE (§3.5.1).
  void die();

  /// Invoked by the host when a client program has been installed: runs
  /// the boot handler invocation (BOOTING status, handler OPEN, §3.7.6).
  void client_booted(Mid parent);

  /// Hard failure (pulling the power cord): same kernel-state loss as DIE
  /// but modelled as initiated from outside the client.
  void crash();

  bool handler_open() const { return handler_open_; }
  bool handler_busy() const { return handler_busy_; }
  bool client_dead() const;

  /// Number of uncompleted requests (so SODAL can obey MAXREQUESTS).
  int live_requests() const { return static_cast<int>(pending_.size()); }

  std::uint64_t boots() const { return boots_; }

  // ---- anycast pool directory (doc/OVERLOAD.md §4) ----
  // A REQUEST addressed to {net::kAnycastMid, pattern} is routed to one
  // member of the responding-server set this kernel has learned for the
  // pattern: seeded by DISCOVER replies, scored by BUSY-NACK shed hints,
  // decayed on successful completions. Selection is deterministic (least
  // shed score, ties broken by a rotating cursor) so traces stay a pure
  // function of the seed.

  /// Members currently known for `pattern`, sorted by MID.
  std::vector<Mid> anycast_members(Pattern pattern) const;
  /// Resolve one concrete member for an anycast request. nullopt when the
  /// directory is empty — callers seed it with a DISCOVER first. Advances
  /// the tie-break cursor, so repeated calls round-robin an idle pool.
  std::optional<Mid> anycast_pick(Pattern pattern);

  /// Admission watermarks actually in force (fixed config values, or the
  /// EWMA-derived ones under config.adaptive_admission).
  std::size_t effective_backlog_watermark() const;
  int effective_offer_watermark() const;

 private:
  struct PendingRequest {
    Tid tid = kNoTid;
    ServerSignature server;
    std::int32_t arg = 0;
    Bytes put_data;  // retained: may have to be re-sent as a DATA frame
    std::uint32_t get_size = 0;
    Bytes* get_into = nullptr;

    enum class Phase { kInTransport, kDelivered, kDone } phase =
        Phase::kInTransport;

    sim::Time issued_at = 0;  // feeds the request-latency histogram

    // completion assembly
    std::optional<net::AcceptSection> accept_info;
    bool late_put_sent = false;
    bool late_put_acked = false;
    // late DATA travels as a self-reliable control frame
    sim::EventId data_timer = 0;
    bool data_timer_armed = false;
    int data_attempts = 0;

    // DISCOVER
    bool discover = false;
    std::vector<Mid> discovered;

    // probing (§3.6.2)
    sim::EventId probe_timer = 0;
    bool probe_armed = false;      // legacy per-request timer
    bool probe_active = false;     // enrolled on the probe wheel (batched)
    sim::Time next_probe_at = 0;   // wheel deadline for this request
    bool awaiting_probe_reply = false;
    bool probe_reply_seen = false;
    int probe_misses = 0;

    // cancel
    bool cancel_requested = false;  // waiting for delivery ack to send it
    bool cancel_sent = false;
    std::optional<sim::Promise<CancelStatus>> cancel_promise;
  };

  struct DeliveredRequest {
    RequesterSignature requester;
    Pattern pattern = 0;
    std::int32_t arg = 0;
    std::uint32_t put_size = 0;
    std::uint32_t get_size = 0;
    bool data_present = false;
    Bytes data;
    bool accepting = false;  // an ACCEPT for it is in progress
    sim::Time delivered_at = 0;  // feeds the adaptive-admission EWMA
  };

  struct OngoingAccept {
    std::optional<sim::Promise<AcceptResult>> promise;  // client ACCEPTs
    // Kernel-internal ACCEPTs (boot protocol) use callbacks instead:
    std::function<void(const AcceptResult&)> kernel_done;
    std::function<void(const Bytes&)> kernel_on_data;
    RequesterSignature requester;
    Bytes* take_into = nullptr;
    std::uint32_t max_take = 0;
    bool frame_acked = false;
    bool waiting_put_data = false;
    AcceptResult result;
    sim::Time issued_at = 0;  // feeds the accept-wait histogram
  };

  using ServerKey = std::pair<Mid, Tid>;

  // transport callbacks
  proto::DispositionResult classify(const net::Frame& f);
  /// Admission control: account one incoming REQUEST offer and return the
  /// shed hint for the current offer-rate window (0 = no overload).
  std::uint8_t note_offer_pressure();
  void deliver(const net::Frame& f);
  void on_acked(Mid peer, const net::Frame& sent);
  void on_failed(Mid peer, const net::Frame& sent, net::NackReason reason);
  void on_busy(Mid peer, const net::Frame& sent, std::uint8_t hint);

  // anycast directory bookkeeping (no-ops for unknown patterns/members).
  // `hops` is the relay distance the seeding DISCOVER reply travelled; a
  // first sighting starts at hops * config_.anycast_hop_bias shed score.
  void anycast_note_member(Pattern pattern, Mid server,
                           std::uint8_t hops = 0);
  void anycast_note_shed(Pattern pattern, Mid server, std::uint8_t hint);
  void anycast_note_result(Pattern pattern, Mid server,
                           CompletionStatus status);

  // adaptive admission (config_.adaptive_admission)
  void note_service_sample(sim::Duration d);

  // requester side
  void fail_request(PendingRequest& p, CompletionStatus status);
  void handle_accept_info(const net::Frame& f);
  void maybe_complete(Tid tid);
  void complete_request(PendingRequest& p, CompletionStatus status,
                        std::int32_t arg, std::uint32_t put_done,
                        std::uint32_t get_done);
  void start_probing(Tid tid);
  void stop_probing(PendingRequest& p);
  void probe_tick(Tid tid);
  void probe_wheel_schedule(sim::Time at);
  void probe_wheel_fire();
  void send_late_data(PendingRequest& p);
  void stop_data_timer(PendingRequest& p);
  void send_cancel_query(PendingRequest& p);
  void finish_discover(Tid tid);

  // server side
  void on_request_delivered(const net::Frame& f);
  void dispatch_arrival(const net::Frame& f);
  bool handler_available_for_arrival() const;
  void handle_late_data(const net::Frame& f);
  void finish_accept(ServerKey key, OngoingAccept& oa);
  void arm_accept_data_deadline(ServerKey key);

  // handler management
  void post_completion(HandlerArgs args);
  void try_dispatch();
  void set_held_frame(const net::Frame& f);
  void clear_held_frame();

  // kernel-served (reserved) patterns (§3.5)
  bool reserved_bound(Pattern p) const;
  void serve_reserved(const net::Frame& f);
  void respond_kernel_accept(const net::Frame& f, std::int32_t arg,
                             Bytes reply_data);
  void arm_load_deadline();
  void reset_for_death(bool client_initiated);

  sim::Simulator& sim_;
  NodeConfig config_;
  Mid mid_;
  UniqueIdSource& uids_;
  NodeCpu& cpu_;
  KernelHost& host_;
  stats::MetricsRegistry& metrics_;  // this node's registry
  proto::Transport transport_;

  // naming
  std::unordered_set<Pattern> client_patterns_;
  // §5.4 indexed table (config_.indexed_pattern_table): slot = low 8 bits
  std::array<Pattern, 256> indexed_table_{};
  std::array<bool, 256> indexed_used_{};
  bool pattern_bound(Pattern p) const;
  std::set<Pattern> boot_patterns_;
  Pattern kill_pattern_ = kKillPattern;
  Pattern load_pattern_ = 0;  // 0 = none
  sim::Time load_started_at_ = 0;  // last load-sequence activity
  bool boot_eligible_ = false;

  // handler state
  bool handler_open_ = true;
  bool handler_busy_ = false;
  bool open_change_pending_ = false;
  bool pending_open_value_ = true;
  std::deque<HandlerArgs> completions_;

  // pipelined input buffer (§5.2.3)
  std::optional<net::Frame> held_frame_;
  sim::EventId hold_timer_ = 0;
  bool hold_timer_armed_ = false;

  // requester state
  std::map<Tid, PendingRequest> pending_;
  // Probe wheel (timing.batched_timer_bookkeeping): every pending
  // request's probe deadline multiplexes onto one armed timer at the
  // earliest of them; firing scans pending_ (bounded by MAXREQUESTS)
  // instead of each request arming/cancelling its own event.
  sim::EventId probe_wheel_timer_ = 0;
  bool probe_wheel_armed_ = false;
  sim::Time probe_wheel_at_ = 0;
  std::vector<Tid> probe_due_scratch_;  // reused by probe_wheel_fire
  Tid next_tid_ = 1;      // monotone across reboots (§5.4)
  Tid boot_min_tid_ = 1;  // TIDs below this predate the current incarnation

  // anycast pool directory (requester side, doc/OVERLOAD.md §4)
  struct AnycastPool {
    std::vector<Mid> members;         // sorted by MID
    std::vector<std::uint32_t> shed;  // parallel shed scores
    std::size_t cursor = 0;           // rotating tie-break
  };
  std::map<Pattern, AnycastPool> anycast_;

  // server state
  std::map<ServerKey, DeliveredRequest> delivered_;
  // admission-control offer-rate window (classify-side, doc/OVERLOAD.md)
  sim::Time admit_window_start_ = 0;
  int admit_offers_ = 0;
  // adaptive-admission EWMAs (alpha = 1/8): per-accept service time and
  // per-window offered load. Zero until the first sample.
  sim::Duration ewma_service_ = 0;
  int ewma_offers_ = 0;
  std::map<ServerKey, OngoingAccept> accepts_;
  std::deque<ServerKey> completed_lru_;  // recently finished (stale ACCEPTs)

  // booting
  Bytes core_image_;
  std::uint64_t boots_ = 0;
  std::uint64_t death_epoch_ = 0;

  bool is_recently_completed(ServerKey k) const;
  void note_completed(ServerKey k);
};

}  // namespace soda
