// The client programming model (§3.1, §4.1): a sequential Task plus an
// interrupt Handler, sharing one uniprogrammed processor.
//
// Subclass Client and override:
//   on_boot(parent)  - the Initialization section (runs in the handler)
//   on_handler(args) - the Handler, invoked on REQUEST arrival/completion
//   on_task()        - the Task, started when the boot handler ends
//
// All three are coroutines so they can block on kernel primitives
// (co_await accept(...), co_await cancel(...)) and SODAL constructs. The
// framework enforces the uniprogrammed discipline: while the handler is
// BUSY, resumptions of the Task are deferred until ENDHANDLER.
#pragma once

#include <cassert>
#include <deque>
#include <exception>
#include <memory>

#include "core/kernel.h"
#include "core/types.h"
#include "sim/coro.h"

namespace soda {

class Node;

class Client {
 public:
  Client() : alive_(std::make_shared<bool>(true)) {}
  virtual ~Client() { *alive_ = false; }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // ---- user hooks -------------------------------------------------
  /// Initialization (§4.1): the handler invocation with BOOTING status.
  virtual sim::Task on_boot(Mid parent) {
    (void)parent;
    co_return;
  }
  /// The Handler: REQUEST arrivals and completions land here.
  virtual sim::Task on_handler(HandlerArgs args) = 0;
  /// The Task: the main program, started when the boot handler ends. A
  /// task that returns performs an implicit DIE (§4.1), so the default
  /// parks forever — right for purely handler-driven servers.
  virtual sim::Task on_task() { co_await park_forever(); }

  // ---- framework (called by Node / Kernel) ------------------------
  void bind(Node* node);
  void start(Mid parent);
  void invoke_handler(const HandlerArgs& args);
  void drain_deferred();
  bool in_handler() const { return in_handler_; }
  void mark_dead() { *alive_ = false; }

  /// First exception that escaped client code, if any (tests assert none).
  std::exception_ptr error() const { return error_; }
  void rethrow_error() const {
    if (error_) std::rethrow_exception(error_);
  }

  // ---- the primitive API, public so library helpers can compose ----
  Kernel& k() const {
    assert(kernel_);
    return *kernel_;
  }
  sim::Simulator& sim() const { return *sim_; }
  Mid my_mid() const { return kernel_->mid(); }

  // ---- REQUEST variants (§4.1.1): non-blocking, return kNoTid when the
  // kernel ignored the request (MAXREQUESTS exceeded). ----
  Tid signal(ServerSignature s, std::int32_t arg = 0) {
    return k().request(Kernel::RequestParams::signal(s, arg)).value_or(kNoTid);
  }
  Tid put(ServerSignature s, std::int32_t arg, Bytes data) {
    return k()
        .request(Kernel::RequestParams::put(s, std::move(data), arg))
        .value_or(kNoTid);
  }
  Tid get(ServerSignature s, std::int32_t arg, Bytes* into,
          std::uint32_t get_size) {
    return k()
        .request(Kernel::RequestParams::get(s, get_size, into, arg))
        .value_or(kNoTid);
  }
  Tid exchange(ServerSignature s, std::int32_t arg, Bytes out, Bytes* in,
               std::uint32_t get_size) {
    return k()
        .request(
            Kernel::RequestParams::exchange(s, std::move(out), get_size, in,
                                            arg))
        .value_or(kNoTid);
  }
  /// Broadcast DISCOVER; matching MIDs land in `into` (4 bytes each).
  Tid discover_request(Pattern pattern, Bytes* into, std::uint32_t get_size) {
    return k()
        .request(Kernel::RequestParams::discover(pattern, get_size, into))
        .value_or(kNoTid);
  }

  // ---- ACCEPT variants (§4.1.1): blocking (bounded). ----
  sim::Future<AcceptResult> accept_signal(RequesterSignature rs,
                                          std::int32_t arg = 0) {
    return gated(k().accept(Kernel::AcceptParams::signal(rs, arg)));
  }
  sim::Future<AcceptResult> accept_put(RequesterSignature rs, std::int32_t arg,
                                       Bytes* take, std::uint32_t max_take) {
    return gated(k().accept(Kernel::AcceptParams::take(rs, take, max_take,
                                                       arg)));
  }
  sim::Future<AcceptResult> accept_get(RequesterSignature rs, std::int32_t arg,
                                       Bytes reply) {
    return gated(
        k().accept(Kernel::AcceptParams::reply(rs, std::move(reply), arg)));
  }
  sim::Future<AcceptResult> accept_exchange(RequesterSignature rs,
                                            std::int32_t arg, Bytes* take,
                                            std::uint32_t max_take,
                                            Bytes reply) {
    return gated(k().accept(Kernel::AcceptParams::exchange(
        rs, take, max_take, std::move(reply), arg)));
  }
  /// REJECT (§4.1.2): an ACCEPT with NIL buffers and argument -1.
  sim::Future<AcceptResult> reject(RequesterSignature rs) {
    return gated(k().accept(Kernel::AcceptParams::reject(rs)));
  }
  static constexpr std::int32_t kRejectArg = -1;

  sim::Future<CancelStatus> cancel(Tid tid) { return gated(k().cancel(tid)); }

  // ---- naming / handler / process control ----
  bool advertise(Pattern p) { return k().advertise(p); }
  bool unadvertise(Pattern p) { return k().unadvertise(p); }
  Pattern unique_id() { return k().get_unique_id(); }

  /// Anycast pool view (doc/OVERLOAD.md §4): the pool members this
  /// kernel has discovered for `p`, and its current least-shed pick.
  std::vector<Mid> anycast_members(Pattern p) const {
    return k().anycast_members(p);
  }
  std::optional<Mid> anycast_resolve(Pattern p) { return k().anycast_pick(p); }
  void open() { k().open(); }
  void close() { k().close(); }
  void die() { k().die(); }

  /// Charge client compute time (queue manipulation, data processing) to
  /// the node's CPU — the simulated equivalent of the work itself.
  void charge_compute(sim::Duration d) {
    k().cpu().charge(d, CostCategory::kClientOverhead);
  }

  /// Simulated-time sleep, correctly gated against the handler.
  sim::Future<sim::Unit> delay(sim::Duration d) {
    sim::Promise<sim::Unit> p;
    auto f = p.future();
    f.set_executor(executor_for_current_context());
    sim_->after(d, [p]() mutable {
      if (!p.fulfilled()) p.set(sim::Unit{});
    });
    return f;
  }

  /// A condition-variable wait gated for the current context. Use instead
  /// of the paper's `while (...) idle()` polling loops.
  sim::Future<sim::Unit> wait_on(sim::CondVar& cv) {
    return cv.wait_via(executor_for_current_context());
  }

  /// A wait that never completes (the idle loop of a pure server task).
  sim::Future<sim::Unit> park_forever() {
    parked_.emplace_back();
    return parked_.back().future();
  }

  /// Resume-context chooser: immediate inside the handler, deferred-while-
  /// handler-busy for the task (the uniprogramming rule).
  sim::ResumeExecutor executor_for_current_context();

  /// Always the task-gated executor, regardless of current context. Used
  /// by continuations that end_handler_early() demotes to task status.
  sim::ResumeExecutor task_gated_executor();

  /// The SODAL saved-PC trick (§4.1.1): a blocking REQUEST issued from
  /// inside the handler must END the handler so the completion interrupt
  /// can be fielded — "there is no way to receive a request completion
  /// while BUSY in the handler". The suspended handler continuation
  /// becomes task-like: it resumes through the task gate once the kernel
  /// delivers the completion. No-op outside the handler.
  void end_handler_early();

 private:
  template <typename T>
  sim::Future<T> gated(sim::Future<T> f) {
    f.set_executor(executor_for_current_context());
    return f;
  }

  sim::Task run_handler(HandlerArgs args, std::uint64_t invocation);
  sim::Task run_task_wrapper();

  Node* node_ = nullptr;
  Kernel* kernel_ = nullptr;
  sim::Simulator* sim_ = nullptr;
  bool in_handler_ = false;
  bool task_started_ = false;
  std::uint64_t handler_invocation_ = 0;
  bool handler_ended_early_ = false;
  std::shared_ptr<bool> alive_;
  std::deque<std::coroutine_handle<>> deferred_;
  std::deque<sim::Promise<sim::Unit>> parked_;
  sim::Task handler_run_;
  sim::Task task_run_;
  std::exception_ptr error_;
};

}  // namespace soda
