// Multiprogramming as a library — the paper's closing future-work item
// (§7.2): "It should also prove possible to implement a kernel for a
// multiprogrammed machine where each process appears to have its own
// logical SODA interface."
//
// ProcessHost is one SODA client hosting many LogicalProcesses. Each
// logical process gets the SODA programming model — advertise patterns,
// issue requests, field arrivals/completions in a logical handler that
// never overlaps itself, run a task — while the host demultiplexes:
//   * arrivals route by advertised pattern ownership,
//   * completions route by the TID that issued them,
//   * per-process invocation queues preserve handler atomicity, so one
//     process's slow handler only delays its own traffic (the host plays
//     the buffering kernel the paper says multiprogramming forces, §6.2).
// The host's real (node-level) handler only enqueues, exactly the fast-
// handler discipline §6.13 recommends.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "sodal/blocking.h"

namespace soda::sodal {

class ProcessHost;

/// One logical process on a multiprogrammed node. Subclass and override
/// the lp_* hooks; use the protected API exactly like a SodalClient.
class LogicalProcess {
 public:
  virtual ~LogicalProcess() = default;

  virtual sim::Task lp_boot() { co_return; }
  virtual sim::Task lp_entry(HandlerArgs a) {
    (void)a;
    co_return;  // default: leave the request pending
  }
  virtual sim::Task lp_completion(HandlerArgs a) {
    (void)a;
    co_return;
  }
  virtual sim::Task lp_task() { co_return; }

  int pid() const { return pid_; }

 protected:
  // ---- the logical SODA interface (defined after ProcessHost) ----
  bool advertise(Pattern p);
  bool unadvertise(Pattern p);
  Pattern unique_id();
  Tid signal(ServerSignature s, std::int32_t arg = 0);
  Tid put(ServerSignature s, std::int32_t arg, Bytes data);
  Tid get(ServerSignature s, std::int32_t arg, Bytes* into,
          std::uint32_t n);
  Tid exchange(ServerSignature s, std::int32_t arg, Bytes out, Bytes* in,
               std::uint32_t n);
  sim::Future<AcceptResult> accept_signal(RequesterSignature rs,
                                          std::int32_t arg = 0);
  sim::Future<AcceptResult> accept_put(RequesterSignature rs,
                                       std::int32_t arg, Bytes* take,
                                       std::uint32_t max_take);
  sim::Future<AcceptResult> accept_get(RequesterSignature rs,
                                       std::int32_t arg, Bytes reply);
  sim::Future<AcceptResult> accept_exchange(RequesterSignature rs,
                                            std::int32_t arg, Bytes* take,
                                            std::uint32_t max_take,
                                            Bytes reply);
  sim::Future<AcceptResult> reject(RequesterSignature rs);
  sim::Future<Completion> b_signal(ServerSignature s, std::int32_t arg = 0);
  sim::Future<Completion> b_put(ServerSignature s, std::int32_t arg,
                                Bytes data);
  sim::Future<Completion> b_get(ServerSignature s, std::int32_t arg,
                                Bytes* into, std::uint32_t n);
  sim::Future<Completion> b_exchange(ServerSignature s, std::int32_t arg,
                                     Bytes out, Bytes* in, std::uint32_t n);
  sim::Future<CancelStatus> cancel(Tid tid);
  sim::Future<sim::Unit> delay(sim::Duration d);
  sim::Future<sim::Unit> wait_on(sim::CondVar& cv);
  Mid my_mid() const;
  sim::Simulator& sim() const;

 private:
  friend class ProcessHost;
  ProcessHost* host_ = nullptr;
  int pid_ = -1;

  // logical handler state
  bool lp_busy_ = false;
  std::deque<HandlerArgs> lp_queue_;
  sim::Task lp_run_;
  sim::Task lp_task_run_;
};

/// The multiprogrammed node: owns the logical processes and demultiplexes
/// SODA traffic among them.
class ProcessHost : public SodalClient {
 public:
  template <typename T, typename... Args>
  T& add_process(Args&&... args) {
    auto p = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *p;
    p->host_ = this;
    p->pid_ = static_cast<int>(processes_.size());
    processes_.push_back(std::move(p));
    if (booted_) boot_process(ref);  // late arrival on a running host
    return ref;
  }

  std::size_t process_count() const { return processes_.size(); }

  sim::Task on_boot(Mid) override {
    booted_ = true;
    for (auto& p : processes_) {
      boot_process(*p);
    }
    co_return;
  }

  sim::Task on_entry(HandlerArgs a) override {
    auto it = pattern_owner_.find(a.invoked_pattern);
    if (it == pattern_owner_.end()) {
      // Shouldn't happen (the kernel screens unadvertised patterns), but
      // a process may have unadvertised between delivery and dispatch.
      co_await reject_current();
      co_return;
    }
    enqueue_invocation(*processes_[static_cast<std::size_t>(it->second)], a);
    co_return;
  }

  sim::Task on_completion(HandlerArgs a) override {
    auto it = tid_owner_.find(a.asker.tid);
    if (it != tid_owner_.end()) {
      const int pid = it->second;
      tid_owner_.erase(it);
      enqueue_invocation(*processes_[static_cast<std::size_t>(pid)], a);
    }
    co_return;
  }

 private:
  friend class LogicalProcess;

  void boot_process(LogicalProcess& p) {
    // Run boot then task outside the host handler context.
    sim().after(0, [this, &p]() {
      p.lp_run_ = run_boot(p);
    });
  }

  sim::Task run_boot(LogicalProcess& p) {
    co_await p.lp_boot();
    p.lp_task_run_ = p.lp_task();
    pump(p);
  }

  void enqueue_invocation(LogicalProcess& p, const HandlerArgs& a) {
    p.lp_queue_.push_back(a);
    // Dispatch outside the node-level handler (fast-handler discipline).
    sim().after(0, [this, &p]() { pump(p); });
  }

  void pump(LogicalProcess& p) {
    if (p.lp_busy_ || p.lp_queue_.empty()) return;
    p.lp_busy_ = true;
    HandlerArgs a = p.lp_queue_.front();
    p.lp_queue_.pop_front();
    p.lp_run_ = run_invocation(p, a);
  }

  sim::Task run_invocation(LogicalProcess& p, HandlerArgs a) {
    if (a.reason == HandlerReason::kRequestArrival) {
      co_await p.lp_entry(a);
    } else {
      co_await p.lp_completion(a);
    }
    p.lp_busy_ = false;
    pump(p);
  }

  Tid track(int pid, Tid tid) {
    if (tid != kNoTid) tid_owner_[tid] = pid;
    return tid;
  }

  std::vector<std::unique_ptr<LogicalProcess>> processes_;
  std::map<Pattern, int> pattern_owner_;
  std::map<Tid, int> tid_owner_;
  bool booted_ = false;
};

// ---- LogicalProcess API, routed through the host ----

inline bool LogicalProcess::advertise(Pattern p) {
  if (!host_->SodalClient::advertise(p)) return false;
  host_->pattern_owner_[p & kPatternMask] = pid_;
  return true;
}
inline bool LogicalProcess::unadvertise(Pattern p) {
  host_->pattern_owner_.erase(p & kPatternMask);
  return host_->SodalClient::unadvertise(p);
}
inline Pattern LogicalProcess::unique_id() { return host_->unique_id(); }
inline Tid LogicalProcess::signal(ServerSignature s, std::int32_t arg) {
  return host_->track(pid_, host_->SodalClient::signal(s, arg));
}
inline Tid LogicalProcess::put(ServerSignature s, std::int32_t arg,
                               Bytes data) {
  return host_->track(pid_, host_->SodalClient::put(s, arg, std::move(data)));
}
inline Tid LogicalProcess::get(ServerSignature s, std::int32_t arg,
                               Bytes* into, std::uint32_t n) {
  return host_->track(pid_, host_->SodalClient::get(s, arg, into, n));
}
inline Tid LogicalProcess::exchange(ServerSignature s, std::int32_t arg,
                                    Bytes out, Bytes* in, std::uint32_t n) {
  return host_->track(
      pid_, host_->SodalClient::exchange(s, arg, std::move(out), in, n));
}
inline sim::Future<AcceptResult> LogicalProcess::accept_signal(
    RequesterSignature rs, std::int32_t arg) {
  return host_->SodalClient::accept_signal(rs, arg);
}
inline sim::Future<AcceptResult> LogicalProcess::accept_put(
    RequesterSignature rs, std::int32_t arg, Bytes* take,
    std::uint32_t max_take) {
  return host_->SodalClient::accept_put(rs, arg, take, max_take);
}
inline sim::Future<AcceptResult> LogicalProcess::accept_get(
    RequesterSignature rs, std::int32_t arg, Bytes reply) {
  return host_->SodalClient::accept_get(rs, arg, std::move(reply));
}
inline sim::Future<AcceptResult> LogicalProcess::accept_exchange(
    RequesterSignature rs, std::int32_t arg, Bytes* take,
    std::uint32_t max_take, Bytes reply) {
  return host_->SodalClient::accept_exchange(rs, arg, take, max_take,
                                             std::move(reply));
}
inline sim::Future<AcceptResult> LogicalProcess::reject(
    RequesterSignature rs) {
  return host_->SodalClient::reject(rs);
}
inline sim::Future<Completion> LogicalProcess::b_signal(ServerSignature s,
                                                        std::int32_t arg) {
  return host_->SodalClient::b_signal(s, arg);
}
inline sim::Future<Completion> LogicalProcess::b_put(ServerSignature s,
                                                     std::int32_t arg,
                                                     Bytes data) {
  return host_->SodalClient::b_put(s, arg, std::move(data));
}
inline sim::Future<Completion> LogicalProcess::b_get(ServerSignature s,
                                                     std::int32_t arg,
                                                     Bytes* into,
                                                     std::uint32_t n) {
  return host_->SodalClient::b_get(s, arg, into, n);
}
inline sim::Future<Completion> LogicalProcess::b_exchange(
    ServerSignature s, std::int32_t arg, Bytes out, Bytes* in,
    std::uint32_t n) {
  return host_->SodalClient::b_exchange(s, arg, std::move(out), in, n);
}
inline sim::Future<CancelStatus> LogicalProcess::cancel(Tid tid) {
  return host_->SodalClient::cancel(tid);
}
inline sim::Future<sim::Unit> LogicalProcess::delay(sim::Duration d) {
  return host_->SodalClient::delay(d);
}
inline sim::Future<sim::Unit> LogicalProcess::wait_on(sim::CondVar& cv) {
  return host_->SodalClient::wait_on(cv);
}
inline Mid LogicalProcess::my_mid() const { return host_->my_mid(); }
inline sim::Simulator& LogicalProcess::sim() const { return host_->sim(); }

}  // namespace soda::sodal
