// Virtual circuits with transparent link moving (§4.2.4).
//
// A link end is a table entry: the pattern we advertise for it plus the
// remote end's <MID, PATTERN>. One end is MASTER, the other SLAVE; the
// SLAVE must become MASTER to move its end. While an end moves, regular
// requests on it are REJECTed and reissued once the move-notice arrives.
//
// The paper's pseudocode (Implementation of Link Moving) leaves the new
// master's view of the far end underspecified; this implementation
// completes it: the move EXCHANGE to the new host carries the far end's
// full signature, so the new host can populate its table directly.
//
// Control traffic shares the link patterns, distinguished by argument:
//   -1  request to become MASTER                (GET: 1 byte grant flag)
//   -2  link has moved; update your table       (PUT: NewLink record)
//   -3  newly-moved end is fully installed      (SIGNAL)
// Application messages use arguments >= 0.
#pragma once

#include <optional>
#include <vector>

#include "sodal/blocking.h"
#include "sodal/util.h"

namespace soda::sodal {

constexpr Pattern kLinkServicePattern = kWellKnownBit | 0x71EE;

constexpr std::int32_t kLinkBecomeMaster = -1;
constexpr std::int32_t kLinkMoved = -2;
constexpr std::int32_t kLinkInstalled = -3;
constexpr std::int32_t kLinkIntroduce = -4;

using LinkId = int;
constexpr LinkId kNoLink = -1;

class LinkClient : public SodalClient {
 public:
  enum class EndState { kMaster, kSlave };

  struct LinkEntry {
    bool used = false;
    Pattern my_pattern = 0;    // advertised locally for this link
    Mid peer_mid = kBroadcastMid;
    Pattern peer_pattern = 0;  // remote end's advertised pattern
    EndState state = EndState::kSlave;
    bool installed = true;     // BEING_INSTALLED until the -3 SIGNAL
    bool moving = false;
    bool dead = false;         // far end destroyed / crashed
    std::optional<RequesterSignature> want_to_move;  // delayed -1 asker
  };

  sim::Task on_boot(Mid parent) override {
    advertise(kLinkServicePattern);
    co_await link_boot(parent);
  }

  /// Subclass boot hook (on_boot is taken by the link machinery).
  virtual sim::Task link_boot(Mid) { co_return; }

  /// An application request arrived over `link`; the subclass should
  /// ACCEPT_CURRENT it (or reject).
  virtual sim::Task on_link_request(LinkId link, HandlerArgs a) {
    (void)link;
    (void)a;
    co_await reject_current();
  }

  // ---------------------------------------------------------------
  /// Establish a link to the LinkClient on `peer`. We hold the MASTER
  /// end. Resolves to kNoLink on failure.
  sim::Future<LinkId> connect_link(Mid peer) {
    sim::Promise<LinkId> pr;
    auto fut = pr.future();
    fut.set_executor(executor_for_current_context());
    connect_loop(peer, pr).detach();
    return fut;
  }

  /// Send over a link (argument must be >= 0). Retries transparently when
  /// the far end is mid-move (REJECTED) until `attempts` runs out.
  sim::Future<Completion> link_put(LinkId id, std::int32_t arg, Bytes data,
                                   int attempts = 20) {
    return link_io(id, arg, std::move(data), nullptr, 0, attempts);
  }
  sim::Future<Completion> link_get(LinkId id, std::int32_t arg, Bytes* into,
                                   std::uint32_t n, int attempts = 20) {
    return link_io(id, arg, {}, into, n, attempts);
  }
  sim::Future<Completion> link_exchange(LinkId id, std::int32_t arg,
                                        Bytes out, Bytes* in, std::uint32_t n,
                                        int attempts = 20) {
    return link_io(id, arg, std::move(out), in, n, attempts);
  }

  /// Move our end of `id` to the LinkClient on machine `new_host`,
  /// transparently to the far end. Resolves true on success; afterwards
  /// this client no longer holds the link.
  sim::Future<bool> move_link(LinkId id, Mid new_host) {
    sim::Promise<bool> pr;
    auto fut = pr.future();
    fut.set_executor(executor_for_current_context());
    move_loop(id, new_host, pr).detach();
    return fut;
  }

  /// INTRODUCE (§4.2.4): "A process that possesses two links may
  /// INTRODUCE the two associated processes. As a result, the two
  /// processes have a link between themselves." We tell the process at
  /// the end of `a` to connect to the machine at the end of `b`.
  sim::Future<bool> introduce(LinkId a, LinkId b) {
    sim::Promise<bool> pr;
    auto fut = pr.future();
    fut.set_executor(task_gated_executor());
    introduce_loop(a, b, pr).detach();
    return fut;
  }

  /// Destroy our end: the far end's next request fails UNADVERTISED and
  /// its entry is marked dead.
  void destroy_link(LinkId id) {
    if (!valid(id)) return;
    unadvertise(links_[static_cast<std::size_t>(id)].my_pattern);
    links_[static_cast<std::size_t>(id)].used = false;
  }

  bool link_alive(LinkId id) const {
    return valid(id) && !links_[static_cast<std::size_t>(id)].dead;
  }
  const LinkEntry* link(LinkId id) const {
    return valid(id) ? &links_[static_cast<std::size_t>(id)] : nullptr;
  }
  std::size_t live_links() const {
    std::size_t n = 0;
    for (const auto& e : links_) n += e.used && !e.dead;
    return n;
  }

  // ---------------------------------------------------------------
  sim::Task on_entry(HandlerArgs a) final {
    if (a.invoked_pattern == kLinkServicePattern) {
      // Install a new end: the EXCHANGE data is the far end's signature.
      Bytes far;
      Pattern mine = unique_id();
      advertise(mine);
      auto r = co_await accept_current_exchange(0, &far, a.put_size,
                                                encode_sig(my_mid(), mine));
      if (r.status != AcceptStatus::kSuccess || far.size() < 12) {
        unadvertise(mine);
        co_return;
      }
      const auto far_sig = decode_sig(far);
      const Mid fmid = far_sig.first;
      const Pattern fpat = far_sig.second;
      LinkId id = alloc();
      LinkEntry& e = links_[static_cast<std::size_t>(id)];
      e.my_pattern = mine;
      e.peer_mid = fmid;
      e.peer_pattern = fpat;
      // arg 1 in the EXCHANGE marks a move-install: the new end is MASTER
      // and must wait for the -3 SIGNAL; a fresh connect makes us SLAVE.
      if (a.arg == 1) {
        e.state = EndState::kMaster;
        e.installed = false;
      } else {
        e.state = EndState::kSlave;
        e.installed = true;
      }
      on_link_established(id);
      co_return;
    }

    const LinkId id = find_by_pattern(a.invoked_pattern);
    if (id == kNoLink) {
      co_await reject_current();
      co_return;
    }
    LinkEntry& e = links_[static_cast<std::size_t>(id)];

    if (a.arg >= 0) {
      if (e.moving) {
        co_await reject_current();  // reissue after the move (§4.2.4)
      } else {
        co_await on_link_request(id, a);
      }
      co_return;
    }

    switch (a.arg) {
      case kLinkBecomeMaster: {
        if (!e.moving) {
          Bytes grant(1, std::byte{1});
          co_await accept_current_get(0, std::move(grant));
          e.state = EndState::kSlave;
        } else {
          // Delay the grant until our own move completes (§4.2.4).
          e.want_to_move = a.asker;
        }
        break;
      }
      case kLinkMoved: {
        Bytes rec;
        auto r = co_await accept_current_put(0, &rec, a.put_size);
        if (r.status == AcceptStatus::kSuccess && rec.size() >= 12) {
          const auto new_sig = decode_sig(rec);
          const Mid nmid = new_sig.first;
          const Pattern npat = new_sig.second;
          e.peer_mid = nmid;
          e.peer_pattern = npat;
          // The mover held MASTER to move; we are (now) the slave side.
          e.state = EndState::kSlave;
          moved_.notify_all();  // wake rejected senders to retry
        }
        break;
      }
      case kLinkInstalled: {
        co_await accept_current_signal(0);
        e.installed = true;
        installed_.notify_all();
        break;
      }
      case kLinkIntroduce: {
        // An introduction: the payload names a machine to link with.
        Bytes who;
        auto r = co_await accept_current_put(0, &who, a.put_size);
        if (r.status == AcceptStatus::kSuccess && who.size() >= 4) {
          introduce_to(static_cast<Mid>(decode_u32(who))).detach();
        }
        break;
      }
      default:
        co_await reject_current();
    }
    co_return;
  }

  /// Notification that a peer established a link to us.
  virtual void on_link_established(LinkId) {}

 protected:
  static Bytes encode_sig(Mid m, Pattern p) {
    Bytes b(12);
    for (int i = 0; i < 4; ++i) {
      b[static_cast<std::size_t>(i)] =
          static_cast<std::byte>((static_cast<std::uint32_t>(m) >> (8 * i)) &
                                 0xFF);
    }
    for (int i = 0; i < 8; ++i) {
      b[static_cast<std::size_t>(4 + i)] =
          static_cast<std::byte>((p >> (8 * i)) & 0xFF);
    }
    return b;
  }
  static std::pair<Mid, Pattern> decode_sig(const Bytes& b) {
    std::uint32_t m = 0;
    Pattern p = 0;
    for (int i = 0; i < 4; ++i) {
      m |= std::to_integer<std::uint32_t>(b[static_cast<std::size_t>(i)])
           << (8 * i);
    }
    for (int i = 0; i < 8; ++i) {
      p |= static_cast<Pattern>(std::to_integer<std::uint8_t>(
               b[static_cast<std::size_t>(4 + i)]))
           << (8 * i);
    }
    return {static_cast<Mid>(m), p & kPatternMask};
  }

 private:
  bool valid(LinkId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < links_.size() &&
           links_[static_cast<std::size_t>(id)].used;
  }

  LinkId alloc() {
    for (std::size_t i = 0; i < links_.size(); ++i) {
      if (!links_[i].used) {
        links_[i] = LinkEntry{};
        links_[i].used = true;
        return static_cast<LinkId>(i);
      }
    }
    links_.push_back(LinkEntry{});
    links_.back().used = true;
    return static_cast<LinkId>(links_.size() - 1);
  }

  LinkId find_by_pattern(Pattern p) const {
    for (std::size_t i = 0; i < links_.size(); ++i) {
      if (links_[i].used && links_[i].my_pattern == p) {
        return static_cast<LinkId>(i);
      }
    }
    return kNoLink;
  }

  sim::Task connect_loop(Mid peer, sim::Promise<LinkId> pr) {
    Pattern mine = unique_id();
    advertise(mine);
    Bytes reply;
    Completion c = co_await b_exchange(
        ServerSignature{peer, kLinkServicePattern}, 0,
        encode_sig(my_mid(), mine), &reply, 12);
    if (!c.ok() || reply.size() < 12) {
      unadvertise(mine);
      pr.set(kNoLink);
      co_return;
    }
    const auto peer_sig = decode_sig(reply);
    const Mid pmid = peer_sig.first;
    const Pattern ppat = peer_sig.second;
    LinkId id = alloc();
    LinkEntry& e = links_[static_cast<std::size_t>(id)];
    e.my_pattern = mine;
    e.peer_mid = pmid;
    e.peer_pattern = ppat;
    e.state = EndState::kMaster;
    e.installed = true;
    pr.set(id);
  }

  sim::Task link_io_loop(LinkId id, std::int32_t arg, Bytes out, Bytes* in,
                         std::uint32_t n, int attempts,
                         sim::Promise<Completion> pr) {
    for (int i = 0; i < attempts; ++i) {
      if (!valid(id) || links_[static_cast<std::size_t>(id)].dead) {
        pr.set(Completion{CompletionStatus::kCrashed, 0, 0, 0});
        co_return;
      }
      LinkEntry& e = links_[static_cast<std::size_t>(id)];
      ServerSignature sig{e.peer_mid, e.peer_pattern};
      Completion c = co_await b_exchange(sig, arg, out, in, n);
      if (c.status == CompletionStatus::kUnadvertised ||
          c.status == CompletionStatus::kCrashed) {
        links_[static_cast<std::size_t>(id)].dead = true;
        pr.set(c);
        co_return;
      }
      if (!c.rejected()) {
        pr.set(c);
        co_return;
      }
      // REJECTED: the far end is mid-move. Wait for a -2 notice (or just
      // a beat) and retry against the updated table entry.
      co_await delay(10 * sim::kMillisecond);
    }
    pr.set(Completion{CompletionStatus::kCompleted, kRejectArg, 0, 0});
  }

  sim::Future<Completion> link_io(LinkId id, std::int32_t arg, Bytes out,
                                  Bytes* in, std::uint32_t n, int attempts) {
    sim::Promise<Completion> pr;
    auto fut = pr.future();
    fut.set_executor(executor_for_current_context());
    link_io_loop(id, arg, std::move(out), in, n, attempts, pr).detach();
    return fut;
  }

  sim::Task introduce_loop(LinkId a, LinkId b, sim::Promise<bool> pr) {
    if (!valid(a) || !valid(b)) {
      pr.set(false);
      co_return;
    }
    const Mid target = links_[static_cast<std::size_t>(b)].peer_mid;
    LinkEntry& ea = links_[static_cast<std::size_t>(a)];
    Completion c = co_await b_put(
        ServerSignature{ea.peer_mid, ea.peer_pattern}, kLinkIntroduce,
        encode_u32(static_cast<std::uint32_t>(target)));
    pr.set(c.ok());
  }

  sim::Task introduce_to(Mid peer) {
    LinkId id = co_await connect_link(peer);
    if (id != kNoLink) on_link_established(id);
  }

  sim::Task move_loop(LinkId id, Mid new_host, sim::Promise<bool> pr) {
    if (!valid(id) || links_[static_cast<std::size_t>(id)].dead) {
      pr.set(false);
      co_return;
    }
    LinkEntry& e = links_[static_cast<std::size_t>(id)];
    e.moving = true;

    // Become MASTER if we are the SLAVE end (§4.2.4 BecomeMaster).
    while (e.state == EndState::kSlave) {
      Bytes grant;
      Completion c = co_await b_get(
          ServerSignature{e.peer_mid, e.peer_pattern}, kLinkBecomeMaster,
          &grant, 1);
      if (c.ok() && !grant.empty() && grant[0] == std::byte{1}) {
        e.state = EndState::kMaster;
        break;
      }
      if (c.status != CompletionStatus::kCompleted) {
        e.moving = false;
        e.dead = true;
        pr.set(false);
        co_return;
      }
      co_await delay(10 * sim::kMillisecond);  // master end is moving; retry
    }

    // Install the new MASTER end at new_host (carrying the far end's
    // signature), learn its pattern.
    Bytes reply;
    Completion c = co_await b_exchange(
        ServerSignature{new_host, kLinkServicePattern}, 1,
        encode_sig(e.peer_mid, e.peer_pattern), &reply, 12);
    if (!c.ok() || reply.size() < 12) {
      e.moving = false;
      pr.set(false);
      co_return;
    }
    const auto new_sig = decode_sig(reply);
    const Mid nmid = new_sig.first;
    const Pattern npat = new_sig.second;

    // Tell the far end to retarget its table (-2), then tell the new end
    // the move is complete (-3).
    c = co_await b_put(ServerSignature{e.peer_mid, e.peer_pattern},
                       kLinkMoved, encode_sig(nmid, npat));
    const bool told_peer = c.ok();
    c = co_await b_signal(ServerSignature{nmid, npat}, kLinkInstalled);

    // Release our end.
    if (e.want_to_move) {
      // A delayed become-master request: grant FAILED so it retries
      // against the new master.
      Bytes denied(1, std::byte{0});
      co_await accept_get(*e.want_to_move, 0, std::move(denied));
      e.want_to_move.reset();
    }
    unadvertise(e.my_pattern);
    e.used = false;
    pr.set(told_peer && c.ok());
  }

  std::vector<LinkEntry> links_;
  sim::CondVar moved_;
  sim::CondVar installed_;
};

}  // namespace soda::sodal
