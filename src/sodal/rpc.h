// Remote procedure call (§4.2.2).
//
// Caller: B_PUT the in-parameters to the procedure's pattern, then B_GET
// the results from the same pattern. Server: when both the PUT and the
// GET of a caller have arrived, run the bound procedure, ACCEPT the PUT's
// data as arguments and ACCEPT the GET with the results (which unblocks
// the caller). Each pattern is bound to one procedure.
#pragma once

#include <functional>
#include <map>

#include "sodal/blocking.h"
#include "sodal/service.h"

namespace soda::sodal {

/// Signature of a remotely callable procedure.
using RpcHandlerFn = std::function<Bytes(const Bytes& in_params)>;

class RpcServer : public SodalClient {
 public:
  explicit RpcServer(std::map<Pattern, RpcHandlerFn> procedures)
      : procedures_(std::move(procedures)) {}

  sim::Task on_boot(Mid) override {
    for (const auto& [pattern, fn] : procedures_) advertise(pattern);
    co_return;
  }

  sim::Task on_entry(HandlerArgs a) override {
    auto pit = procedures_.find(a.invoked_pattern);
    if (pit == procedures_.end()) {
      co_await reject_current();
      co_return;
    }
    // A caller's PUT (put_size > 0) carries the arguments; its GET
    // (get_size > 0) asks for the results. Both must be in hand before
    // the procedure runs. Sessions are per calling machine: a caller is
    // uniprogrammed, so it has at most one call in flight.
    Session& s = sessions_[a.asker.mid];
    if (a.put_size > 0) {
      auto r = co_await accept_current_put(0, &s.in_params, a.put_size);
      s.got_in = (r.status == AcceptStatus::kSuccess);
    } else {
      s.caller = a.asker;
      s.want_out = true;
    }
    if (s.got_in && s.want_out) {
      Bytes out = pit->second(s.in_params);
      ++calls_;
      auto caller = s.caller;
      sessions_.erase(a.asker.mid);
      co_await accept_get(caller, 0, std::move(out));
    }
    co_return;
  }

  std::size_t calls() const { return calls_; }

 private:
  struct Session {
    Bytes in_params;
    bool got_in = false;
    bool want_out = false;
    RequesterSignature caller;
  };
  std::map<Pattern, RpcHandlerFn> procedures_;
  std::map<Mid, Session> sessions_;
  std::size_t calls_ = 0;
};

namespace detail {
inline sim::Task rpc_invoke_loop(SodalClient& c, ServerSignature proc,
                                 Bytes in_params, std::uint32_t max_result,
                                 sim::Promise<StatusOr<Bytes>> pr) {
  Status st = to_status(co_await c.b_put(proc, 0, std::move(in_params)));
  if (!st.ok()) {
    pr.set(StatusOr<Bytes>(st));
    co_return;
  }
  Bytes out;
  st = to_status(co_await c.b_get(proc, 0, &out, max_result));
  if (!st.ok()) {
    pr.set(StatusOr<Bytes>(st));
    co_return;
  }
  pr.set(StatusOr<Bytes>(std::move(out)));
}

inline sim::Task rpc_invoke_handle_loop(SodalClient& c, ServiceHandle proc,
                                        Bytes in_params,
                                        std::uint32_t max_result,
                                        sim::Promise<StatusOr<Bytes>> pr) {
  // Pin the pool to one member first: the PUT carries the arguments and
  // the GET fetches the results, and RpcServer keys its session on the
  // calling machine — both halves of the call must land on one server.
  StatusOr<ServerSignature> target = co_await service_resolve(c, proc);
  if (!target.ok()) {
    pr.set(StatusOr<Bytes>(target.status()));
    co_return;
  }
  co_await rpc_invoke_loop(c, *target, std::move(in_params), max_result, pr);
}
}  // namespace detail

/// The paper's call sequence: B_PUT(args) then B_GET(results). Awaitable
/// from any SodalClient coroutine; the StatusOr distinguishes a REJECT
/// (unbound procedure) from a server crash or a missing advertisement.
inline sim::Future<StatusOr<Bytes>> rpc_invoke(SodalClient& c,
                                               ServerSignature proc,
                                               Bytes in_params,
                                               std::uint32_t max_result =
                                                   2000) {
  sim::Promise<StatusOr<Bytes>> pr;
  auto fut = pr.future();
  fut.set_executor(c.executor_for_current_context());
  detail::rpc_invoke_loop(c, proc, std::move(in_params), max_result, pr)
      .detach();
  return fut;
}

/// Pool-aware overload: call the procedure on whichever pool member the
/// kernel currently rates least shed. The whole call is sticky to that
/// member; the next call may pick another.
inline sim::Future<StatusOr<Bytes>> rpc_invoke(SodalClient& c,
                                               ServiceHandle proc,
                                               Bytes in_params,
                                               std::uint32_t max_result =
                                                   2000) {
  sim::Promise<StatusOr<Bytes>> pr;
  auto fut = pr.future();
  fut.set_executor(c.executor_for_current_context());
  detail::rpc_invoke_handle_loop(c, proc, std::move(in_params), max_result,
                                 pr)
      .detach();
  return fut;
}

}  // namespace soda::sodal
