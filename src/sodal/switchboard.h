// Run-time interconnection (§4.3.1): a switchboard process that clients
// interrogate to obtain entry points while running. Services REGISTER a
// name -> <MID, PATTERN> binding; clients LOOK one up, blocking until it
// appears (the bootstrapping alternative to compile-time patterns and the
// load-time connector).
#pragma once

#include <map>
#include <string>

#include "sodal/blocking.h"
#include "sodal/util.h"

namespace soda::sodal {

constexpr Pattern kSwitchboardPattern = kWellKnownBit | 0x5B0A;

/// Wire format: REGISTER is a PUT with arg=1 of "name\0" + 12-byte
/// signature; LOOKUP is an EXCHANGE with arg=2 of "name" returning the
/// 12-byte signature, REJECTed when unknown.
class Switchboard : public SodalClient {
 public:
  explicit Switchboard(Pattern pattern = kSwitchboardPattern)
      : pattern_(pattern) {}

  sim::Task on_boot(Mid) override {
    advertise(pattern_);
    co_return;
  }

  sim::Task on_entry(HandlerArgs a) override {
    if (a.invoked_pattern != pattern_) co_return;
    if (a.arg == 1) {
      Bytes reg;
      auto r = co_await accept_current_put(0, &reg, a.put_size);
      if (r.status != AcceptStatus::kSuccess || reg.size() < 13) co_return;
      const std::size_t name_len = reg.size() - 12;
      std::string name = to_string(Bytes(reg.begin(),
                                         reg.begin() +
                                             static_cast<std::ptrdiff_t>(
                                                 name_len)));
      Bytes sig(reg.end() - 12, reg.end());
      entries_[name] = sig;
    } else if (a.arg == 2) {
      Bytes name_b;
      // Read the name first (EXCHANGE's put half), then answer. SODA
      // cannot inspect the first buffer before sending the second in one
      // ACCEPT (§3.3.2 note 2), so the lookup uses PUT-then-GET like RPC.
      auto r = co_await accept_current_put(0, &name_b, a.put_size);
      if (r.status != AcceptStatus::kSuccess) co_return;
      pending_lookup_[a.asker.mid] = to_string(name_b);
    } else if (a.arg == 3) {
      auto it = pending_lookup_.find(a.asker.mid);
      if (it == pending_lookup_.end()) {
        co_await reject_current();
        co_return;
      }
      auto eit = entries_.find(it->second);
      if (eit == entries_.end()) {
        pending_lookup_.erase(it);
        co_await reject_current();
        co_return;
      }
      Bytes sig = eit->second;
      pending_lookup_.erase(it);
      co_await accept_current_get(0, std::move(sig));
    }
    co_return;
  }

  std::size_t registered() const { return entries_.size(); }

 private:
  Pattern pattern_;
  std::map<std::string, Bytes> entries_;
  std::map<Mid, std::string> pending_lookup_;
};

namespace detail {
inline sim::Task sb_register_loop(sim::Future<Completion> op,
                                  sim::Promise<Status> pr) {
  pr.set(to_status(co_await op));
}

inline sim::Task sb_lookup_loop(SodalClient& c, ServerSignature sb,
                                std::string name,
                                sim::Promise<StatusOr<ServerSignature>> pr,
                                int max_attempts) {
  Status last = Status::error(StatusCode::kTimedOut);
  for (int i = 0; i < max_attempts; ++i) {
    Completion done = co_await c.b_put(sb, 2, to_bytes(name));
    if (done.ok()) {
      Bytes sig;
      done = co_await c.b_get(sb, 3, &sig, 12);
      if (done.ok() && sig.size() >= 12) {
        pr.set(StatusOr<ServerSignature>(ServerSignature{
            static_cast<Mid>(decode_u32(sig, 0)),
            decode_u64(sig, 4) & kPatternMask}));
        co_return;
      }
    }
    // A REJECT just means "not registered yet" — keep polling. Transport
    // failures (the switchboard machine itself unreachable) are worth
    // reporting distinctly if the retries run out.
    if (!done.ok() && !done.rejected()) last = to_status(done);
    co_await c.delay(25 * sim::kMillisecond);
  }
  pr.set(StatusOr<ServerSignature>(last));  // gave up
}
}  // namespace detail

/// Register `sig` under `name` with the switchboard at `sb`. A signature
/// whose mid is kAnycastMid registers a whole anycast pool
/// (sodal/service.h): lookups then return the pool handle.
inline sim::Future<Status> sb_register(SodalClient& c, ServerSignature sb,
                                       const std::string& name,
                                       ServerSignature sig) {
  Bytes payload = to_bytes(name);
  Bytes s = encode_u32(static_cast<std::uint32_t>(sig.mid));
  Bytes p = encode_u64(sig.pattern);
  payload.insert(payload.end(), s.begin(), s.end());
  payload.insert(payload.end(), p.begin(), p.end());
  sim::Promise<Status> pr;
  auto fut = pr.future();
  fut.set_executor(c.executor_for_current_context());
  detail::sb_register_loop(c.b_put(sb, 1, std::move(payload)), pr).detach();
  return fut;
}

/// Look up `name`, retrying while it is unregistered. Typed failures:
/// kTimedOut when every attempt found the name unregistered, kCrashed /
/// kUnadvertised / kUnavailable when reaching the switchboard itself
/// failed on the last probe.
inline sim::Future<StatusOr<ServerSignature>> sb_lookup(
    SodalClient& c, ServerSignature sb, const std::string& name,
    int max_attempts = 40) {
  sim::Promise<StatusOr<ServerSignature>> pr;
  auto fut = pr.future();
  fut.set_executor(c.executor_for_current_context());
  detail::sb_lookup_loop(c, sb, name, pr, max_attempts).detach();
  return fut;
}

}  // namespace soda::sodal
