// SODAL blocking primitives (§4.1.1): B_SIGNAL, B_PUT, B_GET, B_EXCHANGE,
// plus the blocking DISCOVER helper (§4.1.3).
//
// SodalClient routes completion interrupts for blocking requests back to
// the suspended issuer (the coroutine equivalent of the paper's saved-PC
// trick) and forwards everything else to on_entry / on_completion — the
// SODAL ENTRY/COMPLETION case arms (§4.1.4.1).
#pragma once

#include <map>

#include "core/client.h"
#include "core/network.h"
#include "sodal/status.h"

namespace soda::sodal {

/// What a blocking request resolves to.
struct Completion {
  CompletionStatus status = CompletionStatus::kCompleted;
  std::int32_t arg = 0;
  std::uint32_t put_done = 0;
  std::uint32_t get_done = 0;

  bool ok() const {
    return status == CompletionStatus::kCompleted && !rejected();
  }
  /// The REJECT convention (§4.1.2): an ACCEPT with argument -1 and NIL
  /// buffers means the server refused the request.
  bool rejected() const {
    return status == CompletionStatus::kCompleted && arg < 0;
  }
};

/// Collapse a Completion into the canonical soda::Status.
inline Status to_status(const Completion& c) {
  switch (c.status) {
    case CompletionStatus::kCompleted:
      return c.rejected() ? Status::error(StatusCode::kRejected) : Status{};
    case CompletionStatus::kCrashed:
      return Status::error(StatusCode::kCrashed);
    case CompletionStatus::kUnadvertised:
      return Status::error(StatusCode::kUnadvertised);
    case CompletionStatus::kTimedOut:
      return Status::error(StatusCode::kTimedOut);
  }
  return Status::error(StatusCode::kUnavailable);
}

class SodalClient : public Client {
 public:
  sim::Task on_handler(HandlerArgs a) final {
    if (a.reason == HandlerReason::kRequestCompletion) {
      auto it = blocking_.find(a.asker.tid);
      if (it != blocking_.end()) {
        auto promise = it->second;
        blocking_.erase(it);
        promise.set(Completion{a.status, a.arg, a.put_size, a.get_size});
        slot_freed_.notify_all();  // wake postponed blocking requests
        co_return;
      }
      co_await on_completion(a);
    } else {
      current_asker_ = a.asker;
      co_await on_entry(a);
    }
    slot_freed_.notify_all();
  }

  /// ENTRY arm: an incoming REQUEST (the tag, §4.1.4.1).
  virtual sim::Task on_entry(HandlerArgs a) {
    (void)a;
    co_return;
  }
  /// COMPLETION arm: a non-blocking REQUEST of ours finished.
  virtual sim::Task on_completion(HandlerArgs a) {
    (void)a;
    co_return;
  }

  /// The requester whose REQUEST invoked the current handler run — what
  /// ACCEPT_CURRENT (§4.1.2) implicitly names.
  RequesterSignature current_asker() const { return current_asker_; }

  // ---- ACCEPT_CURRENT family (§4.1.2) ----
  sim::Future<AcceptResult> accept_current_signal(std::int32_t arg = 0) {
    return accept_signal(current_asker_, arg);
  }
  sim::Future<AcceptResult> accept_current_put(std::int32_t arg, Bytes* take,
                                               std::uint32_t max_take) {
    return accept_put(current_asker_, arg, take, max_take);
  }
  sim::Future<AcceptResult> accept_current_get(std::int32_t arg, Bytes reply) {
    return accept_get(current_asker_, arg, std::move(reply));
  }
  sim::Future<AcceptResult> accept_current_exchange(std::int32_t arg,
                                                    Bytes* take,
                                                    std::uint32_t max_take,
                                                    Bytes reply) {
    return accept_exchange(current_asker_, arg, take, max_take,
                           std::move(reply));
  }
  sim::Future<AcceptResult> reject_current() { return reject(current_asker_); }

  // ---- blocking request family (§4.1.1) ----
  sim::Future<Completion> b_signal(ServerSignature s, std::int32_t arg = 0) {
    return issue_blocking(Kernel::RequestParams::signal(s, arg));
  }
  sim::Future<Completion> b_put(ServerSignature s, std::int32_t arg,
                                Bytes data) {
    return issue_blocking(Kernel::RequestParams::put(s, std::move(data), arg));
  }
  sim::Future<Completion> b_get(ServerSignature s, std::int32_t arg,
                                Bytes* into, std::uint32_t get_size) {
    return issue_blocking(Kernel::RequestParams::get(s, get_size, into, arg));
  }
  sim::Future<Completion> b_exchange(ServerSignature s, std::int32_t arg,
                                     Bytes out, Bytes* in,
                                     std::uint32_t get_size) {
    return issue_blocking(
        Kernel::RequestParams::exchange(s, std::move(out), get_size, in, arg));
  }

  /// Blocking DISCOVER (§4.1.3): re-broadcasts until at least one server
  /// answers. More sophisticated clients use discover_request() directly.
  sim::Future<ServerSignature> discover(Pattern pattern) {
    sim::Promise<ServerSignature> pr;
    auto fut = pr.future();
    fut.set_executor(task_gated_executor());
    discover_loop(pattern, pr).detach();
    return fut;
  }

  /// Issue a blocking request but also give the caller its TID (so it can
  /// be cancelled from the handler, as the dining-philosophers deadlock
  /// detector requires).
  sim::Future<Completion> issue_blocking(Kernel::RequestParams params,
                                         Tid* tid_out = nullptr) {
    sim::Promise<Completion> pr;
    auto fut = pr.future();
    // The continuation is task-like whether or not we started inside the
    // handler: end_handler_early() below may demote it.
    fut.set_executor(task_gated_executor());
    blocking_loop(std::move(params), pr, tid_out).detach();
    return fut;
  }

 private:
  sim::Task blocking_loop(Kernel::RequestParams params,
                          sim::Promise<Completion> pr, Tid* tid_out) {
    // A blocking REQUEST from inside the handler performs the paper's
    // saved-PC trick (§4.1.1): END the handler so the completion
    // interrupt can be fielded; we resume as task-context code.
    end_handler_early();
    // The SODAL exception-handler strategy for MAXREQUESTS overflow
    // (§4.1.2): postpone until some pending request completes.
    for (;;) {
      auto tid = k().request(params);
      if (tid) {
        if (tid_out) *tid_out = *tid;
        sim::Promise<Completion> done;
        blocking_.emplace(*tid, done);
        auto f = done.future();
        // Resume inline: the completion routing in on_handler hands the
        // value over; gating happens on the caller's future.
        Completion c = co_await f;
        if (tid_out) *tid_out = kNoTid;
        pr.set(c);
        co_return;
      }
      co_await wait_on(slot_freed_);
    }
  }

  sim::Task discover_loop(Pattern pattern, sim::Promise<ServerSignature> pr) {
    end_handler_early();  // blocking DISCOVER from the handler (§4.1.1)
    Bytes mids;
    for (;;) {
      sim::Promise<Completion> done;
      auto tid = k().request(Kernel::RequestParams::discover(pattern, 4, &mids));
      if (!tid) {
        co_await wait_on(slot_freed_);
        continue;
      }
      blocking_.emplace(*tid, done);
      Completion c = co_await done.future();
      if (c.status == CompletionStatus::kCompleted && mids.size() >= 4) {
        Mid m = static_cast<Mid>(
            std::to_integer<std::uint32_t>(mids[0]) |
            (std::to_integer<std::uint32_t>(mids[1]) << 8) |
            (std::to_integer<std::uint32_t>(mids[2]) << 16) |
            (std::to_integer<std::uint32_t>(mids[3]) << 24));
        pr.set(ServerSignature{m, pattern});
        co_return;
      }
      // Nobody answered: give the network a beat and ask again.
      co_await delay(20 * sim::kMillisecond);
    }
  }

  std::map<Tid, sim::Promise<Completion>> blocking_;
  sim::CondVar slot_freed_;
  RequesterSignature current_asker_;
};

}  // namespace soda::sodal
