// CSP-style guarded communication with output guards, via Bernstein's
// algorithm (§4.2.5.1).
//
// Each CspProcess advertises a well-known identity pattern. A guard in an
// alternative command is a boolean condition plus an optional input
// (`peer ? var`) or output (`peer ! value`) command. Evaluating an
// alternative sends a *query* for every communication guard; the peer
// matches it against its own state:
//
//   WAITING  + complementary guard  -> accept (rendezvous complete)
//   QUERYING + query pending + my MID > asker's -> delay the query
//   otherwise                       -> REJECT (asker moves on)
//
// The MID comparison breaks query cycles, avoiding both the deadlock and
// the livelock of naive symmetric rendezvous (§4.2.5): in a cycle the
// lowest-MID process REJECTS, unblocking its successor.
//
// Queries encode direction and type in the argument: arg = tag*2 + dir,
// dir 1 = the asker is OUTPUT-ing (data rides with the query: a B_PUT),
// dir 0 = the asker is INPUT-ing (a B_GET; the accepter supplies data).
#pragma once

#include <vector>

#include "sodal/blocking.h"

namespace soda::sodal {

constexpr Pattern kCspIdentityPattern = kWellKnownBit | 0xC59;

class CspProcess : public SodalClient {
 public:
  struct Guard {
    bool condition = true;
    enum class Kind { kSkip, kInput, kOutput } kind = Kind::kSkip;
    Mid peer = kBroadcastMid;  // the named process
    int tag = 0;               // message type; must match to rendezvous
    Bytes out_value;           // kOutput: the value sent
    Bytes* in_value = nullptr;  // kInput: where the value lands
    std::uint32_t in_size = 256;
  };

  static Guard skip_guard(bool cond = true) {
    Guard g;
    g.condition = cond;
    return g;
  }
  static Guard input(Mid peer, int tag, Bytes* into, bool cond = true,
                     std::uint32_t max = 256) {
    Guard g;
    g.condition = cond;
    g.kind = Guard::Kind::kInput;
    g.peer = peer;
    g.tag = tag;
    g.in_value = into;
    g.in_size = max;
    return g;
  }
  static Guard output(Mid peer, int tag, Bytes value, bool cond = true) {
    Guard g;
    g.condition = cond;
    g.kind = Guard::Kind::kOutput;
    g.peer = peer;
    g.tag = tag;
    g.out_value = std::move(value);
    return g;
  }

  sim::Task on_boot(Mid parent) override {
    advertise(kCspIdentityPattern);
    co_await csp_boot(parent);
  }
  virtual sim::Task csp_boot(Mid) { co_return; }

  /// Evaluate an alternative command: exactly one ready guard executes.
  /// Resolves to the index of the chosen guard, or -1 when every guard
  /// failed (peer terminated / condition false).
  sim::Future<int> alt(std::vector<Guard> guards) {
    sim::Promise<int> pr;
    auto fut = pr.future();
    fut.set_executor(executor_for_current_context());
    alt_loop(std::move(guards), pr).detach();
    return fut;
  }

  /// Variadic convenience: `co_await alt(g1, g2, ...)`. (Also sidesteps
  /// GCC's initializer-list-in-coroutine limitation at call sites.)
  template <typename... Gs>
  sim::Future<int> alt(Guard first, Gs... rest) {
    std::vector<Guard> gs;
    gs.reserve(1 + sizeof...(rest));
    gs.push_back(std::move(first));
    (gs.push_back(std::move(rest)), ...);
    return alt(std::move(gs));
  }

  // -----------------------------------------------------------------
  sim::Task on_entry(HandlerArgs a) final {
    if (a.invoked_pattern != kCspIdentityPattern || a.arg < 0) {
      co_await reject_current();
      co_return;
    }
    const int tag = a.arg / 2;
    const bool asker_outputs = (a.arg % 2) == 1;

    if (state_ == State::kWaiting && alt_ctx_) {
      const int gi = find_complement(a.asker.mid, tag, asker_outputs);
      if (gi >= 0) {
        co_await rendezvous_accept((*alt_ctx_)[static_cast<std::size_t>(gi)],
                                   a);
        finish_wait(gi);
        co_return;
      }
      co_await reject_current();
      co_return;
    }

    if (state_ == State::kQuerying && query_pending_ &&
        my_mid() > a.asker.mid && alt_ctx_ &&
        find_complement(a.asker.mid, tag, asker_outputs) >= 0) {
      // Delay: we outrank the asker in the cycle-breaking order.
      delayed_.push_back(Delayed{a.asker, tag, asker_outputs, a.put_size});
      co_return;  // no ACCEPT yet; the asker's B_ request stays blocked
    }

    co_await reject_current();
    co_return;
  }

  std::size_t rendezvous_count() const { return rendezvous_; }

  /// Diagnostics (tools/tests): current Bernstein state and queue depth.
  const char* debug_state() const {
    switch (state_) {
      case State::kActive: return "ACTIVE";
      case State::kQuerying: return "QUERYING";
      case State::kWaiting: return "WAITING";
    }
    return "?";
  }
  std::size_t debug_delayed() const { return delayed_.size(); }

 private:
  enum class State { kActive, kQuerying, kWaiting };

  struct Delayed {
    RequesterSignature asker;
    int tag = 0;
    bool asker_outputs = false;
    std::uint32_t put_size = 0;
  };

  static std::int32_t query_arg(const Guard& g) {
    return g.tag * 2 + (g.kind == Guard::Kind::kOutput ? 1 : 0);
  }

  int find_complement(Mid asker, int tag, bool asker_outputs) const {
    for (std::size_t i = 0; i < alt_ctx_->size(); ++i) {
      const Guard& g = (*alt_ctx_)[i];
      if (!g.condition || g.kind == Guard::Kind::kSkip) continue;
      if (g.peer != asker || g.tag != tag) continue;
      if (asker_outputs && g.kind == Guard::Kind::kInput) {
        return static_cast<int>(i);
      }
      if (!asker_outputs && g.kind == Guard::Kind::kOutput) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  sim::Task rendezvous_accept(Guard& g, const HandlerArgs& a) {
    if (g.kind == Guard::Kind::kInput) {
      co_await accept_put(a.asker, 0, g.in_value, a.put_size);
    } else {
      co_await accept_get(a.asker, 0, g.out_value);
    }
    ++rendezvous_;
  }

  sim::Task accept_delayed(Guard& g, const Delayed& d) {
    if (g.kind == Guard::Kind::kInput) {
      co_await accept_put(d.asker, 0, g.in_value, d.put_size);
    } else {
      co_await accept_get(d.asker, 0, g.out_value);
    }
    ++rendezvous_;
  }

  void finish_wait(int gi) {
    matched_guard_ = gi;
    state_ = State::kActive;
    if (wait_wake_ && !wait_wake_->fulfilled()) {
      wait_wake_->set(sim::Unit{});
    }
  }

  sim::Task alt_loop(std::vector<Guard> guards, sim::Promise<int> pr) {
    state_ = State::kQuerying;
    alt_ctx_ = &guards;
    std::vector<bool> failed(guards.size(), false);
    std::size_t viable = 0;
    for (std::size_t i = 0; i < guards.size(); ++i) {
      if (guards[i].condition) {
        ++viable;
      } else {
        failed[i] = true;
      }
    }

    // The outer retry loop closes a hole in the thesis's listing: a query
    // can land in the peer's window *between* two of its own queries and
    // be REJECTed without the delay rule applying; if the peer's
    // remaining queries also miss, both sides would WAIT forever. A
    // WAITING process therefore re-runs its query pass periodically —
    // the paper's rejector-side comment ("we may eventually issue a
    // REQUEST to the REJECTED client") made unconditional.
    for (;;) {
      if (viable == 0) {
        state_ = State::kActive;
        alt_ctx_ = nullptr;
        co_await settle_delayed_rejections();
        pr.set(-1);
        co_return;
      }

      state_ = State::kQuerying;
      for (std::size_t i = 0; i < guards.size(); ++i) {
        Guard& g = guards[i];
        if (failed[i]) continue;
        if (g.kind == Guard::Kind::kSkip) {
          // A pure boolean guard that holds executes immediately.
          state_ = State::kActive;
          alt_ctx_ = nullptr;
          co_await settle_delayed_rejections();
          pr.set(static_cast<int>(i));
          co_return;
        }

        ServerSignature sig{g.peer, kCspIdentityPattern};
        query_pending_ = true;
        Completion c;
        if (g.kind == Guard::Kind::kOutput) {
          c = co_await b_put(sig, query_arg(g), g.out_value);
        } else {
          c = co_await b_get(sig, query_arg(g), g.in_value, g.in_size);
        }
        query_pending_ = false;

        if (c.status == CompletionStatus::kCrashed ||
            c.status == CompletionStatus::kUnadvertised) {
          // The named process terminated: the guard fails (CSP rule).
          failed[i] = true;
          --viable;
          continue;
        }
        if (c.rejected()) {
          // The peer was not ready. First see whether someone we delayed
          // can rendezvous with us right now (Bernstein's unblocking step).
          const int di = take_delayed();
          if (di >= 0) {
            const Delayed d = delayed_saved_;
            const int gi =
                find_complement(d.asker.mid, d.tag, d.asker_outputs);
            if (gi >= 0) {
              co_await accept_delayed(guards[static_cast<std::size_t>(gi)],
                                      d);
              state_ = State::kActive;
              alt_ctx_ = nullptr;
              co_await settle_delayed_rejections();
              pr.set(gi);
              co_return;
            }
            co_await reject(d.asker);
          }
          continue;  // try the next guard
        }
        // Completed: the peer accepted our query — rendezvous!
        ++rendezvous_;
        state_ = State::kActive;
        alt_ctx_ = nullptr;
        co_await settle_delayed_rejections();
        pr.set(static_cast<int>(i));
        co_return;
      }

      if (viable == 0) continue;  // resolves to failure above

      // Anyone we delayed during the pass may match one of our guards.
      while (!delayed_.empty()) {
        const Delayed d = delayed_.front();
        delayed_.erase(delayed_.begin());
        const int gi = find_complement(d.asker.mid, d.tag, d.asker_outputs);
        if (gi >= 0) {
          co_await accept_delayed(guards[static_cast<std::size_t>(gi)], d);
          state_ = State::kActive;
          alt_ctx_ = nullptr;
          co_await settle_delayed_rejections();
          pr.set(gi);
          co_return;
        }
        co_await reject(d.asker);
      }

      // WAIT for a matching query, with a retry backstop. The wake-up
      // promise is captured by value in the timer so nothing dangles if
      // the client dies first.
      state_ = State::kWaiting;
      matched_guard_ = -1;
      sim::Promise<sim::Unit> wake;
      wait_wake_ = wake;
      auto wake_future = wake.future();
      wake_future.set_executor(task_gated_executor());
      sim().after(kWaitRetryInterval, [wake]() mutable {
        if (!wake.fulfilled()) wake.set(sim::Unit{});
      });
      co_await wake_future;
      wait_wake_.reset();
      if (matched_guard_ >= 0) {
        const int gi = matched_guard_;
        alt_ctx_ = nullptr;
        co_await settle_delayed_rejections();
        pr.set(gi);
        co_return;
      }
      // Timed out: go around and re-query.
    }
  }

  static constexpr sim::Duration kWaitRetryInterval =
      35 * sim::kMillisecond;

  /// Pop one delayed query, if any.
  int take_delayed() {
    if (delayed_.empty()) return -1;
    delayed_saved_ = delayed_.front();
    delayed_.erase(delayed_.begin());
    return 0;
  }

  /// Any still-delayed queries cannot rendezvous with this alternative
  /// any more: REJECT them so their senders move on.
  sim::Task settle_delayed_rejections() {
    while (!delayed_.empty()) {
      Delayed d = delayed_.front();
      delayed_.erase(delayed_.begin());
      co_await reject(d.asker);
    }
  }

  State state_ = State::kActive;
  bool query_pending_ = false;
  std::vector<Guard>* alt_ctx_ = nullptr;
  std::vector<Delayed> delayed_;
  Delayed delayed_saved_;
  int matched_guard_ = -1;
  std::optional<sim::Promise<sim::Unit>> wait_wake_;
  std::size_t rendezvous_ = 0;
};

}  // namespace soda::sodal
