// A hierarchical name service (§6.14): SODA deliberately keeps kernel
// naming to exact fixed-length patterns; "more complex naming strategies
// (such as name hierarchies or name retrieval within a given environment)
// can be provided by a name server client." This is that client: a
// directory tree of "/"-separated paths bound to <MID, PATTERN>
// signatures, with bind/resolve/list/unbind operations.
//
// Wire protocol on the well-known pattern (argument = opcode):
//   1 BIND    PUT  "path\0" + 12-byte signature
//   2 RESOLVE PUT  "path"            (stage 1 of lookup)
//   3 FETCH   GET  12-byte signature (stage 2; REJECTed when unbound)
//   4 LIST    PUT  "path"            (stage 1 of listing)
//   5 LISTGET GET  "child1\nchild2\n..." (stage 2)
//   6 UNBIND  PUT  "path"
// Two-stage lookups follow the RPC discipline (§4.2.2): SODA cannot
// inspect the first buffer before sending the second in one ACCEPT.
#pragma once

#include <map>
#include <set>
#include <string>

#include "sodal/blocking.h"
#include "sodal/util.h"

namespace soda::sodal {

constexpr Pattern kNameServerPattern = kWellKnownBit | 0x4A3E;

class NameServer : public SodalClient {
 public:
  explicit NameServer(Pattern pattern = kNameServerPattern)
      : pattern_(pattern) {}

  sim::Task on_boot(Mid) override {
    advertise(pattern_);
    co_return;
  }

  sim::Task on_entry(HandlerArgs a) override {
    if (a.invoked_pattern != pattern_) co_return;
    switch (a.arg) {
      case 1: {  // BIND
        Bytes payload;
        auto r = co_await accept_current_put(0, &payload, a.put_size);
        if (r.status != AcceptStatus::kSuccess || payload.size() < 13) break;
        const std::string path = to_string(
            Bytes(payload.begin(), payload.end() - 12));
        Bytes sig(payload.end() - 12, payload.end());
        bindings_[normalize(path)] = sig;
        break;
      }
      case 2: {  // RESOLVE (stage 1)
        Bytes path;
        auto r = co_await accept_current_put(0, &path, a.put_size);
        if (r.status == AcceptStatus::kSuccess) {
          staged_[a.asker.mid] = normalize(to_string(path));
        }
        break;
      }
      case 3: {  // FETCH (stage 2)
        auto sit = staged_.find(a.asker.mid);
        if (sit == staged_.end()) {
          co_await reject_current();
          break;
        }
        auto bit = bindings_.find(sit->second);
        staged_.erase(sit);
        if (bit == bindings_.end()) {
          co_await reject_current();
          break;
        }
        Bytes sig = bit->second;
        co_await accept_current_get(0, std::move(sig));
        break;
      }
      case 4: {  // LIST (stage 1)
        Bytes path;
        auto r = co_await accept_current_put(0, &path, a.put_size);
        if (r.status == AcceptStatus::kSuccess) {
          staged_[a.asker.mid] = normalize(to_string(path));
        }
        break;
      }
      case 5: {  // LISTGET (stage 2)
        auto sit = staged_.find(a.asker.mid);
        if (sit == staged_.end()) {
          co_await reject_current();
          break;
        }
        const std::string prefix =
            sit->second.empty() ? "" : sit->second + "/";
        staged_.erase(sit);
        std::set<std::string> children;
        for (const auto& [path, sig] : bindings_) {
          if (path.rfind(prefix, 0) != 0) continue;
          const std::string rest = path.substr(prefix.size());
          if (rest.empty()) continue;
          children.insert(rest.substr(0, rest.find('/')));
        }
        std::string listing;
        for (const auto& c : children) {
          listing += c;
          listing += '\n';
        }
        co_await accept_current_get(
            static_cast<std::int32_t>(children.size()),
            to_bytes(listing));
        break;
      }
      case 6: {  // UNBIND
        Bytes path;
        auto r = co_await accept_current_put(0, &path, a.put_size);
        if (r.status == AcceptStatus::kSuccess) {
          bindings_.erase(normalize(to_string(path)));
        }
        break;
      }
      default:
        co_await reject_current();
    }
    co_return;
  }

  std::size_t bindings() const { return bindings_.size(); }

 private:
  static std::string normalize(std::string p) {
    // strip leading/trailing slashes; collapse doubles
    std::string out;
    bool slash = true;
    for (char c : p) {
      if (c == '/') {
        if (!slash) out += '/';
        slash = true;
      } else {
        out += c;
        slash = false;
      }
    }
    if (!out.empty() && out.back() == '/') out.pop_back();
    return out;
  }

  Pattern pattern_;
  std::map<std::string, Bytes> bindings_;
  std::map<Mid, std::string> staged_;
};

// ---- client-side helpers ----

inline sim::Future<Completion> ns_bind(SodalClient& c, ServerSignature ns,
                                       const std::string& path,
                                       ServerSignature sig) {
  Bytes payload = to_bytes(path);
  Bytes m = encode_u32(static_cast<std::uint32_t>(sig.mid));
  Bytes p = encode_u64(sig.pattern);
  payload.insert(payload.end(), m.begin(), m.end());
  payload.insert(payload.end(), p.begin(), p.end());
  return c.b_put(ns, 1, std::move(payload));
}

inline sim::Future<Completion> ns_unbind(SodalClient& c, ServerSignature ns,
                                         const std::string& path) {
  return c.b_put(ns, 6, to_bytes(path));
}

namespace detail {
inline sim::Task ns_resolve_loop(SodalClient& c, ServerSignature ns,
                                 std::string path,
                                 sim::Promise<ServerSignature> pr) {
  Completion done = co_await c.b_put(ns, 2, to_bytes(path));
  if (!done.ok()) {
    pr.set(ServerSignature{kBroadcastMid, 0});
    co_return;
  }
  Bytes sig;
  done = co_await c.b_get(ns, 3, &sig, 12);
  if (!done.ok() || sig.size() < 12) {
    pr.set(ServerSignature{kBroadcastMid, 0});
    co_return;
  }
  pr.set(ServerSignature{static_cast<Mid>(decode_u32(sig, 0)),
                         decode_u64(sig, 4) & kPatternMask});
}

inline sim::Task ns_list_loop(SodalClient& c, ServerSignature ns,
                              std::string path,
                              sim::Promise<std::vector<std::string>> pr) {
  std::vector<std::string> names;
  Completion done = co_await c.b_put(ns, 4, to_bytes(path));
  if (done.ok()) {
    Bytes listing;
    done = co_await c.b_get(ns, 5, &listing, 2000);
    if (done.ok()) {
      std::string cur;
      for (auto b : listing) {
        const char ch = static_cast<char>(std::to_integer<unsigned char>(b));
        if (ch == '\n') {
          if (!cur.empty()) names.push_back(cur);
          cur.clear();
        } else {
          cur += ch;
        }
      }
    }
  }
  pr.set(std::move(names));
}
}  // namespace detail

/// Resolve a path to a signature (mid == kBroadcastMid when unbound).
inline sim::Future<ServerSignature> ns_resolve(SodalClient& c,
                                               ServerSignature ns,
                                               const std::string& path) {
  sim::Promise<ServerSignature> pr;
  auto fut = pr.future();
  fut.set_executor(c.executor_for_current_context());
  detail::ns_resolve_loop(c, ns, path, pr).detach();
  return fut;
}

/// List the immediate children of a directory path.
inline sim::Future<std::vector<std::string>> ns_list(
    SodalClient& c, ServerSignature ns, const std::string& path) {
  sim::Promise<std::vector<std::string>> pr;
  auto fut = pr.future();
  fut.set_executor(c.executor_for_current_context());
  detail::ns_list_loop(c, ns, path, pr).detach();
  return fut;
}

}  // namespace soda::sodal
