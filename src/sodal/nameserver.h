// A hierarchical name service (§6.14): SODA deliberately keeps kernel
// naming to exact fixed-length patterns; "more complex naming strategies
// (such as name hierarchies or name retrieval within a given environment)
// can be provided by a name server client." This is that client: a
// directory tree of "/"-separated paths bound to <MID, PATTERN>
// signatures, with bind/resolve/list/unbind operations.
//
// Wire protocol on the well-known pattern (argument = opcode):
//   1 BIND    PUT  "path\0" + 12-byte signature
//   2 RESOLVE PUT  "path"            (stage 1 of lookup)
//   3 FETCH   GET  12-byte signature (stage 2; REJECTed when unbound)
//   4 LIST    PUT  "path"            (stage 1 of listing)
//   5 LISTGET GET  "child1\nchild2\n..." (stage 2)
//   6 UNBIND  PUT  "path"
// Two-stage lookups follow the RPC discipline (§4.2.2): SODA cannot
// inspect the first buffer before sending the second in one ACCEPT.
#pragma once

#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "sodal/blocking.h"
#include "sodal/util.h"

namespace soda::sodal {

constexpr Pattern kNameServerPattern = kWellKnownBit | 0x4A3E;

class NameServer : public SodalClient {
 public:
  /// `indexed` (the default) keeps bindings in a hash table with a
  /// refcounted per-directory child index, so exact operations are O(1)
  /// and LIST touches only the listed directory. `indexed = false` keeps
  /// the original flat map whose LIST scans every binding — retained so
  /// the scaling bench can measure the difference.
  explicit NameServer(Pattern pattern = kNameServerPattern,
                      bool indexed = true)
      : pattern_(pattern), indexed_(indexed) {}

  sim::Task on_boot(Mid) override {
    advertise(pattern_);
    co_return;
  }

  sim::Task on_entry(HandlerArgs a) override {
    if (a.invoked_pattern != pattern_) co_return;
    switch (a.arg) {
      case 1: {  // BIND
        Bytes payload;
        auto r = co_await accept_current_put(0, &payload, a.put_size);
        if (r.status != AcceptStatus::kSuccess || payload.size() < 13) break;
        const std::string path = to_string(
            Bytes(payload.begin(), payload.end() - 12));
        Bytes sig(payload.end() - 12, payload.end());
        bind_path(normalize(path), std::move(sig));
        break;
      }
      case 2: {  // RESOLVE (stage 1)
        Bytes path;
        auto r = co_await accept_current_put(0, &path, a.put_size);
        if (r.status == AcceptStatus::kSuccess) {
          staged_[a.asker.mid] = normalize(to_string(path));
        }
        break;
      }
      case 3: {  // FETCH (stage 2)
        auto sit = staged_.find(a.asker.mid);
        if (sit == staged_.end()) {
          co_await reject_current();
          break;
        }
        auto bit = bindings_.find(sit->second);
        staged_.erase(sit);
        if (bit == bindings_.end()) {
          co_await reject_current();
          break;
        }
        Bytes sig = bit->second;
        co_await accept_current_get(0, std::move(sig));
        break;
      }
      case 4: {  // LIST (stage 1)
        Bytes path;
        auto r = co_await accept_current_put(0, &path, a.put_size);
        if (r.status == AcceptStatus::kSuccess) {
          staged_[a.asker.mid] = normalize(to_string(path));
        }
        break;
      }
      case 5: {  // LISTGET (stage 2)
        auto sit = staged_.find(a.asker.mid);
        if (sit == staged_.end()) {
          co_await reject_current();
          break;
        }
        const std::string dir = sit->second;
        staged_.erase(sit);
        std::set<std::string> children;
        if (indexed_) {
          auto cit = children_.find(dir);
          if (cit != children_.end()) {
            for (const auto& [name, refs] : cit->second) {
              children.insert(name);
            }
          }
        } else {
          const std::string prefix = dir.empty() ? "" : dir + "/";
          for (const auto& [path, sig] : bindings_) {
            if (path.rfind(prefix, 0) != 0) continue;
            const std::string rest = path.substr(prefix.size());
            if (rest.empty()) continue;
            children.insert(rest.substr(0, rest.find('/')));
          }
        }
        std::string listing;
        for (const auto& c : children) {
          listing += c;
          listing += '\n';
        }
        co_await accept_current_get(
            static_cast<std::int32_t>(children.size()),
            to_bytes(listing));
        break;
      }
      case 6: {  // UNBIND
        Bytes path;
        auto r = co_await accept_current_put(0, &path, a.put_size);
        if (r.status == AcceptStatus::kSuccess) {
          unbind_path(normalize(to_string(path)));
        }
        break;
      }
      default:
        co_await reject_current();
    }
    co_return;
  }

  std::size_t bindings() const { return bindings_.size(); }

 private:
  static std::string normalize(std::string p) {
    // strip leading/trailing slashes; collapse doubles
    std::string out;
    bool slash = true;
    for (char c : p) {
      if (c == '/') {
        if (!slash) out += '/';
        slash = true;
      } else {
        out += c;
        slash = false;
      }
    }
    if (!out.empty() && out.back() == '/') out.pop_back();
    return out;
  }

  void bind_path(const std::string& path, Bytes sig) {
    auto [it, inserted] = bindings_.try_emplace(path, std::move(sig));
    if (!inserted) {
      it->second = std::move(sig);  // rebind: index refcounts unchanged
      return;
    }
    if (indexed_) index_add(path);
  }

  void unbind_path(const std::string& path) {
    if (bindings_.erase(path) == 0) return;
    if (indexed_) index_remove(path);
  }

  /// Every ancestor directory of `path` gains (or loses) a reference to
  /// the child component below it, so binding "a/b/c" makes "b" listable
  /// under "a" even though "a/b" itself is not bound — the same derived
  /// children the legacy full scan produced.
  void index_add(const std::string& path) {
    std::string dir = path;
    while (!dir.empty()) {
      const auto slash = dir.rfind('/');
      const std::string leaf =
          slash == std::string::npos ? dir : dir.substr(slash + 1);
      dir = slash == std::string::npos ? std::string() : dir.substr(0, slash);
      ++children_[dir][leaf];
    }
  }

  void index_remove(const std::string& path) {
    std::string dir = path;
    while (!dir.empty()) {
      const auto slash = dir.rfind('/');
      const std::string leaf =
          slash == std::string::npos ? dir : dir.substr(slash + 1);
      dir = slash == std::string::npos ? std::string() : dir.substr(0, slash);
      auto cit = children_.find(dir);
      if (cit == children_.end()) continue;
      auto lit = cit->second.find(leaf);
      if (lit == cit->second.end()) continue;
      if (--lit->second == 0) cit->second.erase(lit);
      if (cit->second.empty()) children_.erase(cit);
    }
  }

  Pattern pattern_;
  bool indexed_;
  std::unordered_map<std::string, Bytes> bindings_;
  // directory -> child name -> number of bindings contributing it
  std::map<std::string, std::map<std::string, int>> children_;
  std::map<Mid, std::string> staged_;
};

// ---- client-side helpers ----
//
// Every operation reports through soda::Status / StatusOr, so callers
// branch on one code enum instead of Completion quirks and sentinel
// signatures: kNotFound is "the path is unbound", kCrashed /
// kUnadvertised / kTimedOut are transport-level failures reaching the
// name server itself. A binding whose signature mid is kAnycastMid names
// an anycast pool (sodal/service.h); the 12-byte wire signature carries
// it unchanged.

namespace detail {
inline Bytes ns_bind_payload(const std::string& path, ServerSignature sig) {
  Bytes payload = to_bytes(path);
  Bytes m = encode_u32(static_cast<std::uint32_t>(sig.mid));
  Bytes p = encode_u64(sig.pattern);
  payload.insert(payload.end(), m.begin(), m.end());
  payload.insert(payload.end(), p.begin(), p.end());
  return payload;
}

inline sim::Task ns_status_loop(sim::Future<Completion> op,
                                sim::Promise<Status> pr) {
  pr.set(to_status(co_await op));
}

inline sim::Task ns_resolve_loop(SodalClient& c, ServerSignature ns,
                                 std::string path,
                                 sim::Promise<StatusOr<ServerSignature>> pr) {
  Completion done = co_await c.b_put(ns, 2, to_bytes(path));
  if (!done.ok()) {
    pr.set(StatusOr<ServerSignature>(to_status(done)));
    co_return;
  }
  Bytes sig;
  done = co_await c.b_get(ns, 3, &sig, 12);
  if (done.rejected()) {
    // FETCH rejects exactly when the path is unbound (or unstaged).
    pr.set(StatusOr<ServerSignature>(StatusCode::kNotFound));
    co_return;
  }
  if (!done.ok() || sig.size() < 12) {
    pr.set(StatusOr<ServerSignature>(to_status(done)));
    co_return;
  }
  pr.set(StatusOr<ServerSignature>(
      ServerSignature{static_cast<Mid>(decode_u32(sig, 0)),
                      decode_u64(sig, 4) & kPatternMask}));
}

inline sim::Task ns_list_loop(SodalClient& c, ServerSignature ns,
                              std::string path,
                              sim::Promise<StatusOr<std::vector<std::string>>>
                                  pr) {
  Completion done = co_await c.b_put(ns, 4, to_bytes(path));
  if (!done.ok()) {
    pr.set(StatusOr<std::vector<std::string>>(to_status(done)));
    co_return;
  }
  Bytes listing;
  done = co_await c.b_get(ns, 5, &listing, 2000);
  if (!done.ok()) {
    pr.set(StatusOr<std::vector<std::string>>(to_status(done)));
    co_return;
  }
  std::vector<std::string> names;
  std::string cur;
  for (auto b : listing) {
    const char ch = static_cast<char>(std::to_integer<unsigned char>(b));
    if (ch == '\n') {
      if (!cur.empty()) names.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  pr.set(StatusOr<std::vector<std::string>>(std::move(names)));
}

template <typename T>
sim::Future<T> via_caller(SodalClient& c, sim::Promise<T>& pr) {
  auto fut = pr.future();
  fut.set_executor(c.executor_for_current_context());
  return fut;
}
}  // namespace detail

/// Bind `path` to `sig` at the name server.
inline sim::Future<Status> ns_bind(SodalClient& c, ServerSignature ns,
                                   const std::string& path,
                                   ServerSignature sig) {
  sim::Promise<Status> pr;
  auto fut = detail::via_caller(c, pr);
  detail::ns_status_loop(c.b_put(ns, 1, detail::ns_bind_payload(path, sig)),
                         pr)
      .detach();
  return fut;
}

/// Remove the binding for `path`, if any.
inline sim::Future<Status> ns_unbind(SodalClient& c, ServerSignature ns,
                                     const std::string& path) {
  sim::Promise<Status> pr;
  auto fut = detail::via_caller(c, pr);
  detail::ns_status_loop(c.b_put(ns, 6, to_bytes(path)), pr).detach();
  return fut;
}

/// Resolve a path to a signature (kNotFound when unbound).
inline sim::Future<StatusOr<ServerSignature>> ns_resolve(
    SodalClient& c, ServerSignature ns, const std::string& path) {
  sim::Promise<StatusOr<ServerSignature>> pr;
  auto fut = detail::via_caller(c, pr);
  detail::ns_resolve_loop(c, ns, path, pr).detach();
  return fut;
}

/// List the immediate children of a directory path.
inline sim::Future<StatusOr<std::vector<std::string>>> ns_list(
    SodalClient& c, ServerSignature ns, const std::string& path) {
  sim::Promise<StatusOr<std::vector<std::string>>> pr;
  auto fut = detail::via_caller(c, pr);
  detail::ns_list_loop(c, ns, path, pr).detach();
  return fut;
}

}  // namespace soda::sodal
