// Remote memory reference (§4.2.3, §6.17.2): PEEK and POKE on another
// node's memory, built directly on GET and PUT. The server binds one
// well-known entry point; the REQUEST argument carries the address and
// the buffer size carries the extent. CLOSE/OPEN around the handler give
// mutual exclusion for critical sections.
#pragma once

#include "sodal/blocking.h"

namespace soda::sodal {

class RemoteMemoryServer : public SodalClient {
 public:
  RemoteMemoryServer(Pattern entry, std::size_t memory_bytes)
      : entry_(entry), memory_(memory_bytes) {}

  sim::Task on_boot(Mid) override {
    advertise(entry_);
    co_return;
  }

  sim::Task on_entry(HandlerArgs a) override {
    if (a.invoked_pattern != entry_) co_return;
    const std::size_t addr = static_cast<std::size_t>(
        static_cast<std::uint32_t>(a.arg));
    if (a.put_size > 0) {
      // POKE: install the incoming bytes at `addr`.
      if (addr + a.put_size > memory_.size()) {
        co_await reject_current();
        co_return;
      }
      Bytes incoming;
      auto r = co_await accept_current_put(0, &incoming, a.put_size);
      if (r.status == AcceptStatus::kSuccess) {
        std::copy(incoming.begin(), incoming.end(),
                  memory_.begin() + static_cast<std::ptrdiff_t>(addr));
        ++pokes_;
      }
    } else if (a.get_size > 0) {
      // PEEK: return `get_size` bytes from `addr`.
      if (addr + a.get_size > memory_.size()) {
        co_await reject_current();
        co_return;
      }
      Bytes chunk(memory_.begin() + static_cast<std::ptrdiff_t>(addr),
                  memory_.begin() +
                      static_cast<std::ptrdiff_t>(addr + a.get_size));
      co_await accept_current_get(0, std::move(chunk));
      ++peeks_;
    } else {
      // Bare SIGNAL: treat as a test-and-set on byte 0 (the synchronization
      // primitive §4.2.3 calls for). Returns the old value in the ACCEPT
      // argument and sets the byte.
      const std::int32_t old = std::to_integer<std::int32_t>(memory_[0]);
      memory_[0] = std::byte{1};
      co_await accept_current_signal(old);
    }
    co_return;
  }

  Bytes& memory() { return memory_; }
  std::size_t peeks() const { return peeks_; }
  std::size_t pokes() const { return pokes_; }

 private:
  Pattern entry_;
  Bytes memory_;
  std::size_t peeks_ = 0;
  std::size_t pokes_ = 0;
};

// Requester-side PEEK / POKE / TEST_AND_SET helpers, awaitable from any
// SodalClient coroutine.
inline sim::Future<Completion> peek(SodalClient& c, ServerSignature rmr,
                                    std::uint32_t addr, Bytes* into,
                                    std::uint32_t size) {
  return c.b_get(rmr, static_cast<std::int32_t>(addr), into, size);
}
inline sim::Future<Completion> poke(SodalClient& c, ServerSignature rmr,
                                    std::uint32_t addr, Bytes value) {
  return c.b_put(rmr, static_cast<std::int32_t>(addr), std::move(value));
}
/// Returns the previous value of the lock byte via Completion::arg.
inline sim::Future<Completion> test_and_set(SodalClient& c,
                                            ServerSignature rmr) {
  return c.b_signal(rmr, 0);
}

}  // namespace soda::sodal
