// Small byte-buffer helpers shared by SODAL programs, tests and examples.
#pragma once

#include <cstdint>
#include <string>

#include "core/types.h"

namespace soda::sodal {

inline Bytes to_bytes(const std::string& s) {
  Bytes b(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    b[i] = static_cast<std::byte>(s[i]);
  }
  return b;
}

inline std::string to_string(const Bytes& b) {
  std::string s(b.size(), '\0');
  for (std::size_t i = 0; i < b.size(); ++i) {
    s[i] = static_cast<char>(std::to_integer<unsigned char>(b[i]));
  }
  return s;
}

inline Bytes encode_u32(std::uint32_t v) {
  Bytes b(4);
  for (int i = 0; i < 4; ++i) {
    b[static_cast<std::size_t>(i)] =
        static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
  return b;
}

inline std::uint32_t decode_u32(const Bytes& b, std::size_t at = 0) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4 && at + i < b.size(); ++i) {
    v |= std::to_integer<std::uint32_t>(b[at + i]) << (8 * i);
  }
  return v;
}

inline Bytes encode_u64(std::uint64_t v) {
  Bytes b(8);
  for (int i = 0; i < 8; ++i) {
    b[static_cast<std::size_t>(i)] =
        static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
  return b;
}

inline std::uint64_t decode_u64(const Bytes& b, std::size_t at = 0) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8 && at + i < b.size(); ++i) {
    v |= std::to_integer<std::uint64_t>(b[at + i]) << (8 * i);
  }
  return v;
}

inline Bytes filled(std::size_t n, std::uint8_t value = 0xAB) {
  return Bytes(n, static_cast<std::byte>(value));
}

}  // namespace soda::sodal
