// The timeserver utility (§4.3.2, §4.4.3): SODA has no timeouts in its
// primitives, so an impatient client registers a wakeup REQUEST with a
// timeserver before starting a slow interaction; when the alarm expires
// the timeserver ACCEPTs the wakeup, the client's completion handler
// fires, and the client may CANCEL its other outstanding requests.
#pragma once

#include <map>

#include "sodal/blocking.h"

namespace soda::sodal {

/// Well-known pattern for the standard time service.
constexpr Pattern kAlarmClockPattern = kWellKnownBit | 0x7717;

class TimeServer : public SodalClient {
 public:
  explicit TimeServer(Pattern pattern = kAlarmClockPattern)
      : pattern_(pattern) {}

  sim::Task on_boot(Mid) override {
    advertise(pattern_);
    co_return;
  }

  sim::Task on_entry(HandlerArgs a) override {
    if (a.invoked_pattern != pattern_) co_return;
    // The REQUEST argument is the delay in milliseconds.
    const auto delay_ms = static_cast<sim::Duration>(a.arg < 0 ? 0 : a.arg);
    const RequesterSignature who = a.asker;
    ++armed_;
    sim().after(delay_ms * sim::kMillisecond, [this, who]() {
      fire(who).detach();
    });
    co_return;
  }

  std::size_t armed() const { return armed_; }
  std::size_t fired() const { return fired_; }

 private:
  sim::Task fire(RequesterSignature who) {
    auto r = co_await accept_signal(who, 0);
    if (r.status == AcceptStatus::kSuccess) ++fired_;
    // CANCELLED means the client cancelled its wakeup in time — normal.
  }

  Pattern pattern_;
  std::size_t armed_ = 0;
  std::size_t fired_ = 0;
};

/// Requester-side helper: arm a wakeup; the returned TID identifies the
/// alarm's completion in the handler and can be CANCELled if the awaited
/// event beats the clock.
inline Tid arm_alarm(SodalClient& c, ServerSignature timeserver,
                     std::int32_t delay_ms) {
  return c.signal(timeserver, delay_ms);
}

}  // namespace soda::sodal
