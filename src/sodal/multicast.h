// Reliable multicast as a library (§6.17.1): "if a client wishes to send
// a message reliably to several sites in a group, it must issue a
// separate REQUEST to each site" — the paper declines a kernel primitive
// and points at exactly this construction.
//
// Also here: bidding support (§6.17.5). DISCOVER returns MIDs with no way
// to discriminate; a community of servers can additionally advertise a
// bid entry that a chooser GETs, selecting the least-loaded member.
#pragma once

#include <vector>

#include "sodal/blocking.h"
#include "sodal/util.h"

namespace soda::sodal {

struct MulticastResult {
  int delivered = 0;  // completed successfully
  int rejected = 0;   // REJECTed by the member
  int failed = 0;     // crashed / unadvertised
  std::vector<Completion> completions;  // per-member, in member order

  bool all_delivered(std::size_t members) const {
    return delivered == static_cast<int>(members);
  }
};

namespace detail {
inline sim::Task multicast_member(SodalClient& c, ServerSignature member,
                                  std::int32_t arg, Bytes data,
                                  MulticastResult* result, std::size_t slot,
                                  int* outstanding,
                                  sim::Promise<MulticastResult> pr) {
  Completion done = co_await c.b_put(member, arg, std::move(data));
  result->completions[slot] = done;
  if (done.ok()) {
    ++result->delivered;
  } else if (done.rejected()) {
    ++result->rejected;
  } else {
    ++result->failed;
  }
  if (--*outstanding == 0) {
    MulticastResult out = std::move(*result);
    delete result;
    delete outstanding;
    pr.set(std::move(out));
  }
}
}  // namespace detail

/// Send `data` reliably to every member of the group; resolves when all
/// transfers have completed or failed. Requests are issued concurrently
/// (the SODAL layer postpones past MAXREQUESTS transparently).
inline sim::Future<MulticastResult> multicast(
    SodalClient& c, const std::vector<ServerSignature>& group,
    std::int32_t arg, const Bytes& data) {
  sim::Promise<MulticastResult> pr;
  auto fut = pr.future();
  fut.set_executor(c.executor_for_current_context());
  if (group.empty()) {
    pr.set(MulticastResult{});
    return fut;
  }
  auto* result = new MulticastResult;
  result->completions.resize(group.size());
  auto* outstanding = new int(static_cast<int>(group.size()));
  for (std::size_t i = 0; i < group.size(); ++i) {
    detail::multicast_member(c, group[i], arg, data, result, i, outstanding,
                             pr)
        .detach();
  }
  return fut;
}

// ------------------------------------------------------------------
// Bidding (§6.17.5)

/// A server-side mixin entry: advertise `bid_pattern` and answer GETs
/// with the current load figure. Call from any SodalClient's on_entry.
class BiddingServer : public SodalClient {
 public:
  BiddingServer(Pattern service, Pattern bid_pattern)
      : service_(service), bid_pattern_(bid_pattern) {}

  sim::Task on_boot(Mid) override {
    advertise(service_);
    advertise(bid_pattern_);
    co_return;
  }

  sim::Task on_entry(HandlerArgs a) final {
    if (a.invoked_pattern == bid_pattern_) {
      co_await accept_current_get(0, encode_u32(load_));
      co_return;
    }
    if (a.invoked_pattern == service_) {
      ++load_;  // trivially: load = requests served
      co_await serve(a);
      co_return;
    }
    co_await reject_current();
  }

  /// Subclass hook: serve one request on the service pattern.
  virtual sim::Task serve(HandlerArgs a) {
    (void)a;
    co_await accept_current_signal(0);
  }

  std::uint32_t load() const { return load_; }
  void set_load(std::uint32_t l) { load_ = l; }

 private:
  Pattern service_;
  Pattern bid_pattern_;
  std::uint32_t load_ = 0;
};

namespace detail {
inline sim::Task pick_least_loaded_loop(SodalClient& c, Pattern service,
                                        Pattern bid_pattern,
                                        sim::Promise<ServerSignature> pr) {
  // 1. DISCOVER the community.
  Bytes mids;
  c.discover_request(service, &mids, 64);
  co_await c.delay(c.k().config().timing.discover_window +
                   20 * sim::kMillisecond);
  // 2. GET a bid from each and keep the lowest.
  ServerSignature best{kBroadcastMid, 0};
  std::uint32_t best_load = UINT32_MAX;
  for (std::size_t i = 0; i + 4 <= mids.size(); i += 4) {
    const Mid m = static_cast<Mid>(decode_u32(mids, i));
    Bytes bid;
    Completion done =
        co_await c.b_get(ServerSignature{m, bid_pattern}, 0, &bid, 4);
    if (!done.ok() || bid.size() < 4) continue;
    const std::uint32_t load = decode_u32(bid);
    if (load < best_load) {
      best_load = load;
      best = ServerSignature{m, service};
    }
  }
  pr.set(best);
}
}  // namespace detail

/// Choose the least-loaded member of the community advertising `service`
/// (mid == kBroadcastMid in the result means nobody answered).
inline sim::Future<ServerSignature> pick_least_loaded(SodalClient& c,
                                                      Pattern service,
                                                      Pattern bid_pattern) {
  sim::Promise<ServerSignature> pr;
  auto fut = pr.future();
  fut.set_executor(c.executor_for_current_context());
  detail::pick_least_loaded_loop(c, service, bid_pattern, pr).detach();
  return fut;
}

}  // namespace soda::sodal
