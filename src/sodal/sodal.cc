// The SODAL runtime is header-only; this TU anchors the library target.
#include "sodal/sodal.h"
