// Input ports and priority queues (§4.2.1).
//
// A port is a queueing point for incoming messages: many writers, one
// reader. SODA's kernel never buffers messages, so the port server client
// queues REQUESTER SIGNATURES in its handler and ACCEPTs them from its
// task — flow control comes from CLOSE-ing the handler when the signature
// queue fills. Priority ports order entries by the REQUEST argument.
#pragma once

#include <functional>
#include <vector>

#include "sodal/blocking.h"
#include "sodal/queue.h"

namespace soda::sodal {

class PortServer : public SodalClient {
 public:
  struct Message {
    RequesterSignature from;
    std::int32_t arg = 0;  // doubles as the priority
    Bytes data;
  };
  using Sink = std::function<void(const Message&)>;

  PortServer(Pattern port, std::size_t queue_max, Sink sink,
             bool priority = false)
      : port_(port),
        queue_max_(queue_max),
        sink_(std::move(sink)),
        priority_(priority) {}

  sim::Task on_boot(Mid) override {
    advertise(port_);
    co_return;
  }

  sim::Task on_entry(HandlerArgs a) override {
    if (a.invoked_pattern != port_) co_return;
    waiting_.push_back(Entry{a.asker, a.arg, a.put_size});
    if (waiting_.size() >= queue_max_) {
      close();  // §4.2.1: no room for more signatures
      closed_ = true;
    }
    ready_.notify_all();
    co_return;
  }

  sim::Task on_task() override {
    for (;;) {
      while (waiting_.empty()) co_await wait_on(ready_);
      std::size_t pick = 0;
      if (priority_) {
        for (std::size_t i = 1; i < waiting_.size(); ++i) {
          if (waiting_[i].arg > waiting_[pick].arg) pick = i;
        }
      }
      Entry e = waiting_[pick];
      waiting_.erase(waiting_.begin() +
                     static_cast<std::ptrdiff_t>(pick));
      if (closed_) {
        open();  // room again
        closed_ = false;
      }
      Message m;
      m.from = e.from;
      m.arg = e.arg;
      auto r = co_await accept_put(e.from, 0, &m.data, e.put_size);
      if (r.status == AcceptStatus::kSuccess) {
        ++delivered_;
        if (sink_) sink_(m);
      }
    }
  }

  std::size_t delivered() const { return delivered_; }
  Pattern pattern() const { return port_; }

 private:
  struct Entry {
    RequesterSignature from;
    std::int32_t arg;
    std::uint32_t put_size;
  };

  Pattern port_;
  std::size_t queue_max_;
  Sink sink_;
  bool priority_;
  bool closed_ = false;
  std::vector<Entry> waiting_;
  sim::CondVar ready_;
  std::size_t delivered_ = 0;
};

namespace detail {
inline sim::Task port_send_loop(sim::Future<Completion> op,
                                sim::Promise<Status> pr) {
  pr.set(to_status(co_await op));
}
}  // namespace detail

/// Write one message into a port: B_PUT with the argument doubling as the
/// priority (§4.2.1). Backpressure is invisible to the sender beyond the
/// extra latency while the port's handler is CLOSEd.
inline sim::Future<Status> port_send(SodalClient& c, ServerSignature port,
                                     std::int32_t priority, Bytes data) {
  sim::Promise<Status> pr;
  auto fut = pr.future();
  fut.set_executor(c.executor_for_current_context());
  detail::port_send_loop(c.b_put(port, priority, std::move(data)), pr)
      .detach();
  return fut;
}

}  // namespace soda::sodal
