// The SODAL bounded QUEUE type (§4.1.4) with the paper's six operations.
#pragma once

#include <cstddef>
#include <deque>
#include <stdexcept>

namespace soda::sodal {

template <typename T>
class Queue {
 public:
  explicit Queue(std::size_t capacity) : capacity_(capacity) {}

  void enqueue(T item) {
    if (is_full()) throw std::overflow_error("sodal::Queue overflow");
    items_.push_back(std::move(item));
  }

  T dequeue() {
    if (is_empty()) throw std::underflow_error("sodal::Queue underflow");
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  bool is_empty() const { return items_.empty(); }
  bool is_full() const { return items_.size() >= capacity_; }
  bool almost_empty() const { return items_.size() == 1; }
  bool almost_full() const { return items_.size() + 1 == capacity_; }

  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
};

}  // namespace soda::sodal
