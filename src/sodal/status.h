// Unified result types for the SODAL library layer.
//
// The kernel primitives report outcomes through several ad-hoc channels
// (CompletionStatus + the REJECT argument convention, RpcResult::ok,
// sentinel ServerSignatures from ns_resolve). soda::Status and
// soda::StatusOr<T> give every SODAL helper one canonical shape: check
// `ok()`, branch on `code()`, unwrap `value()`.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>

namespace soda {

enum class StatusCode : std::uint8_t {
  kOk,
  kRejected,      // the server ACCEPTed with argument -1 (§4.1.2)
  kCrashed,       // the server crashed / died / went silent
  kUnadvertised,  // the pattern was not advertised at the server
  kNotFound,      // the named object does not exist (e.g. an unbound path)
  kUnavailable,   // could not issue / no server answered
  kTimedOut,      // the server stayed BUSY past the retry budget (overload)
};

constexpr std::string_view to_string(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kRejected: return "rejected";
    case StatusCode::kCrashed: return "crashed";
    case StatusCode::kUnadvertised: return "unadvertised";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kTimedOut: return "timedout";
  }
  return "?";
}

class Status {
 public:
  Status() = default;  // OK
  static Status error(StatusCode code) {
    Status s;
    s.code_ = code;
    return s;
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  explicit operator bool() const { return ok(); }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
};

/// A Status or a value: the usual sum type. Constructing from a T yields
/// OK; constructing from a non-OK Status yields an empty, failed result.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status s) : status_(s) { assert(!s.ok()); }  // NOLINT(runtime/explicit)
  StatusOr(StatusCode c) : status_(Status::error(c)) {}  // NOLINT
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  explicit operator bool() const { return ok(); }
  const Status& status() const { return status_; }
  StatusCode code() const { return status_.code(); }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace soda
