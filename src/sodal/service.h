// Service handles: how SODAL programs name the thing they are calling.
//
// The kernel primitives address a concrete <MID, PATTERN> pair
// (ServerSignature). That is the wrong granularity for a replicated
// service: N servers advertising the same pattern form an anycast pool
// (doc/OVERLOAD.md §4), and a caller should say "the print service", not
// "the print server on machine 7". ServiceHandle is that name:
//
//   * ServiceHandle::of(sig)    — a specific server, classic addressing
//   * ServiceHandle::pool(pat)  — any current advertiser of `pat`; the
//     caller's kernel picks the least-shed member per request
//
// A pool handle lowers to ServerSignature{kAnycastMid, pattern}, so it
// flows through every 12-byte signature on the wire — NameServer and
// Switchboard bindings carry pools with no format change — and the
// requester kernel resolves the sentinel to a concrete member at REQUEST
// time. `resolve()` pins a pool to one member up front, which RPC needs:
// the PUT/GET pair of one call must land on the same server.
#pragma once

#include <optional>

#include "sodal/blocking.h"
#include "sodal/status.h"

namespace soda::sodal {

class ServiceHandle {
 public:
  /// A concrete server. A signature whose mid is kAnycastMid (e.g. one
  /// resolved out of a directory that binds names to pools) is treated
  /// as the pool it denotes.
  static ServiceHandle of(ServerSignature sig) { return ServiceHandle(sig); }

  /// The anycast pool of every server currently advertising `pattern`.
  static ServiceHandle pool(Pattern pattern) {
    return ServiceHandle(ServerSignature{kAnycastMid, pattern});
  }

  bool is_pool() const { return sig_.mid == kAnycastMid; }
  Pattern pattern() const { return sig_.pattern; }

  /// The signature this handle lowers to. For a pool handle the mid is
  /// kAnycastMid: usable directly with any REQUEST primitive (the kernel
  /// resolves per request) and storable in directories.
  ServerSignature signature() const { return sig_; }

 private:
  explicit ServiceHandle(ServerSignature sig) : sig_(sig) {}
  ServerSignature sig_;
};

namespace detail {
inline sim::Task service_resolve_loop(SodalClient& c, ServiceHandle h,
                                      int max_attempts,
                                      sim::Promise<StatusOr<ServerSignature>>
                                          pr) {
  if (!h.is_pool()) {
    pr.set(StatusOr<ServerSignature>(h.signature()));
    co_return;
  }
  // The kernel's pool directory is fed by DISCOVER replies; if nothing
  // has been discovered yet, run a DISCOVER round and retry.
  for (int i = 0; i < max_attempts; ++i) {
    if (auto m = c.anycast_resolve(h.pattern())) {
      pr.set(StatusOr<ServerSignature>(ServerSignature{*m, h.pattern()}));
      co_return;
    }
    co_await c.discover(h.pattern());
  }
  pr.set(StatusOr<ServerSignature>(StatusCode::kUnavailable));
}
}  // namespace detail

/// Pin a handle to one concrete server: a pass-through for a concrete
/// handle; for a pool, the kernel's current least-shed member (seeding
/// the pool with DISCOVER rounds when it is empty). Use when a multi-step
/// exchange must stay on one server — e.g. an RPC's PUT/GET pair.
inline sim::Future<StatusOr<ServerSignature>> service_resolve(
    SodalClient& c, ServiceHandle h, int max_attempts = 4) {
  sim::Promise<StatusOr<ServerSignature>> pr;
  auto fut = pr.future();
  fut.set_executor(c.executor_for_current_context());
  detail::service_resolve_loop(c, h, max_attempts, pr).detach();
  return fut;
}

}  // namespace soda::sodal
