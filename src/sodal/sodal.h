// Umbrella header for the SODAL runtime library (chapter 4).
#pragma once

#include "sodal/blocking.h"
#include "sodal/connector.h"
#include "sodal/csp.h"
#include "sodal/directory.h"
#include "sodal/links.h"
#include "sodal/multicast.h"
#include "sodal/multiprog.h"
#include "sodal/nameserver.h"
#include "sodal/port.h"
#include "sodal/queue.h"
#include "sodal/rmr.h"
#include "sodal/rpc.h"
#include "sodal/service.h"
#include "sodal/switchboard.h"
#include "sodal/timeserver.h"
#include "sodal/util.h"
