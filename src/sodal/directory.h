// One client-side face for the two run-time naming services.
//
// SODA grows two directories with different shapes: the hierarchical
// NameServer (§6.14, "/"-separated paths, list/unbind) and the flat
// Switchboard (§4.3.1, name -> signature, block-until-registered). Their
// wire protocols differ (see sodal/nameserver.h and sodal/switchboard.h
// headers, and doc/SODAL.md §3 for the side-by-side format tables), but
// a client that just wants "bind this name" / "what is this name" /
// "wait until this name exists" should not care which daemon answers.
// Directory is that facade: construct it over either backend and use
// bind/resolve/watch uniformly. Since both wire formats move the same
// 12-byte <MID, PATTERN> signature, a pool binding (mid == kAnycastMid,
// sodal/service.h) passes through either backend unchanged.
#pragma once

#include <string>

#include "sodal/nameserver.h"
#include "sodal/service.h"
#include "sodal/switchboard.h"

namespace soda::sodal {

class Directory {
 public:
  enum class Backend : std::uint8_t {
    kNameServer,   // hierarchical paths; resolve fails fast with kNotFound
    kSwitchboard,  // flat names; lookups poll until registration
  };

  /// `server` is the directory daemon's signature — typically
  /// {mid, kNameServerPattern} or {mid, kSwitchboardPattern}.
  Directory(Backend backend, ServerSignature server)
      : backend_(backend), server_(server) {}

  static Directory name_server(ServerSignature server) {
    return Directory(Backend::kNameServer, server);
  }
  static Directory switchboard(ServerSignature server) {
    return Directory(Backend::kSwitchboard, server);
  }

  Backend backend() const { return backend_; }
  ServerSignature server() const { return server_; }

  /// Publish `name` -> `sig`. Rebinding overwrites on both backends.
  sim::Future<Status> bind(SodalClient& c, const std::string& name,
                           ServerSignature sig) const {
    if (backend_ == Backend::kNameServer) {
      return ns_bind(c, server_, name, sig);
    }
    return sb_register(c, server_, name, sig);
  }

  /// Publish a service handle — the pool form of bind.
  sim::Future<Status> bind(SodalClient& c, const std::string& name,
                           ServiceHandle h) const {
    return bind(c, name, h.signature());
  }

  /// One-shot lookup: kNotFound when the name is unbound right now (the
  /// switchboard backend probes exactly once instead of polling).
  sim::Future<StatusOr<ServerSignature>> resolve(
      SodalClient& c, const std::string& name) const {
    if (backend_ == Backend::kNameServer) {
      return ns_resolve(c, server_, name);
    }
    sim::Promise<StatusOr<ServerSignature>> pr;
    auto fut = detail::via_caller(c, pr);
    resolve_once_loop(c, server_, name, pr).detach();
    return fut;
  }

  /// Blocking lookup: poll until the name appears (or the attempt budget
  /// runs out — kTimedOut), the run-time interconnection idiom (§4.3.1).
  sim::Future<StatusOr<ServerSignature>> watch(SodalClient& c,
                                               const std::string& name,
                                               int max_attempts = 40) const {
    if (backend_ == Backend::kSwitchboard) {
      return sb_lookup(c, server_, name, max_attempts);
    }
    sim::Promise<StatusOr<ServerSignature>> pr;
    auto fut = detail::via_caller(c, pr);
    watch_ns_loop(c, server_, name, max_attempts, pr).detach();
    return fut;
  }

 private:
  static sim::Task resolve_once_loop(
      SodalClient& c, ServerSignature sb, std::string name,
      sim::Promise<StatusOr<ServerSignature>> pr) {
    StatusOr<ServerSignature> r = co_await sb_lookup(c, sb, name,
                                                     /*max_attempts=*/1);
    if (!r.ok() && r.code() == StatusCode::kTimedOut) {
      // One unregistered probe on the flat backend is this facade's
      // "unbound path".
      pr.set(StatusOr<ServerSignature>(StatusCode::kNotFound));
      co_return;
    }
    pr.set(std::move(r));
  }

  static sim::Task watch_ns_loop(SodalClient& c, ServerSignature ns,
                                 std::string name, int max_attempts,
                                 sim::Promise<StatusOr<ServerSignature>> pr) {
    Status last = Status::error(StatusCode::kTimedOut);
    for (int i = 0; i < max_attempts; ++i) {
      StatusOr<ServerSignature> r = co_await ns_resolve(c, ns, name);
      if (r.ok()) {
        pr.set(std::move(r));
        co_return;
      }
      if (r.code() != StatusCode::kNotFound) last = r.status();
      co_await c.delay(25 * sim::kMillisecond);  // same pace as sb_lookup
    }
    pr.set(StatusOr<ServerSignature>(last));
  }

  Backend backend_;
  ServerSignature server_;
};

}  // namespace soda::sodal
