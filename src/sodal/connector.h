// The connector (§4.3.1, load-time interconnection): "a linkage editor
// which, instead of tightly linking separate modules together, links them
// loosely by establishing entry points used for intermodule
// communication" — as in Charlotte and Arachne.
//
// The paper's connector patches pattern placeholders in core images. Our
// core images are registered program names (see DESIGN.md), so the
// connector delivers the wiring at initialization time instead — the
// alternative the paper itself offers: "the connector may provide
// specific signatures at client initialization time by sending REQUESTS
// containing signatures to the clients."
//
// Protocol: every connectable client advertises kConnectorConfigPattern;
// the connector boots each module on a discovered free machine, then
// PUTs a directory of <service name, MID, PATTERN> records to each.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sodal/blocking.h"
#include "sodal/util.h"

namespace soda::sodal {

constexpr Pattern kConnectorConfigPattern = kWellKnownBit | 0xC0DF;

/// Directory wire format: repeated records of
///   [u32 name_len][name bytes][u32 mid][u64 pattern]
inline Bytes encode_directory(
    const std::map<std::string, ServerSignature>& dir) {
  Bytes out;
  for (const auto& [name, sig] : dir) {
    Bytes len = encode_u32(static_cast<std::uint32_t>(name.size()));
    Bytes nm = to_bytes(name);
    Bytes mid = encode_u32(static_cast<std::uint32_t>(sig.mid));
    Bytes pat = encode_u64(sig.pattern);
    out.insert(out.end(), len.begin(), len.end());
    out.insert(out.end(), nm.begin(), nm.end());
    out.insert(out.end(), mid.begin(), mid.end());
    out.insert(out.end(), pat.begin(), pat.end());
  }
  return out;
}

inline std::map<std::string, ServerSignature> decode_directory(
    const Bytes& b) {
  std::map<std::string, ServerSignature> dir;
  std::size_t at = 0;
  while (at + 4 <= b.size()) {
    const std::uint32_t len = decode_u32(b, at);
    at += 4;
    if (at + len + 12 > b.size()) break;
    std::string name = to_string(Bytes(
        b.begin() + static_cast<std::ptrdiff_t>(at),
        b.begin() + static_cast<std::ptrdiff_t>(at + len)));
    at += len;
    const Mid mid = static_cast<Mid>(decode_u32(b, at));
    at += 4;
    const Pattern pat = decode_u64(b, at) & kPatternMask;
    at += 8;
    dir[name] = ServerSignature{mid, pat};
  }
  return dir;
}

/// Base class for modules a Connector can wire together. Subclasses
/// advertise their service pattern in connected_boot() and read peers
/// from peers() once wired() fires.
class ConnectedClient : public SodalClient {
 public:
  sim::Task on_boot(Mid parent) final {
    advertise(kConnectorConfigPattern);
    co_await connected_boot(parent);
  }

  /// Subclass boot hook.
  virtual sim::Task connected_boot(Mid) { co_return; }

  sim::Task on_entry(HandlerArgs a) final {
    if (a.invoked_pattern == kConnectorConfigPattern) {
      Bytes dir;
      auto r = co_await accept_current_put(0, &dir, a.put_size);
      if (r.status == AcceptStatus::kSuccess) {
        peers_ = decode_directory(dir);
        wired_ = true;
        wired_cv_.notify_all();
      }
      co_return;
    }
    co_await connected_entry(a);
  }

  /// Subclass handler hook for everything that is not connector traffic.
  virtual sim::Task connected_entry(HandlerArgs) {
    co_await reject_current();
  }

  /// Await the connector's directory.
  sim::Future<sim::Unit> wired() {
    if (wired_) {
      sim::Promise<sim::Unit> p;
      p.set(sim::Unit{});
      return p.future();
    }
    return wait_on(wired_cv_);
  }

  bool is_wired() const { return wired_; }
  const std::map<std::string, ServerSignature>& peers() const {
    return peers_;
  }
  ServerSignature peer(const std::string& name) const {
    auto it = peers_.find(name);
    return it == peers_.end() ? ServerSignature{kBroadcastMid, 0}
                              : it->second;
  }

 private:
  std::map<std::string, ServerSignature> peers_;
  bool wired_ = false;
  sim::CondVar wired_cv_;
};

/// The connector process: boots `modules` (program name -> exported
/// service name/pattern) on free machines, then distributes the complete
/// directory to every module.
class Connector : public SodalClient {
 public:
  struct Module {
    std::string program;    // registered core-image name to boot
    std::string service;    // name the module is published under
    Pattern pattern;        // pattern the module will advertise
  };

  explicit Connector(std::vector<Module> modules)
      : modules_(std::move(modules)) {}

  sim::Task on_task() override {
    // 1. Find enough free machines.
    Bytes mids;
    discover_request(Kernel::kDefaultBootPattern, &mids,
                     static_cast<std::uint32_t>(4 * modules_.size() + 16));
    co_await delay(k().config().timing.discover_window +
                   20 * sim::kMillisecond);
    std::vector<Mid> free;
    for (std::size_t i = 0; i + 4 <= mids.size(); i += 4) {
      free.push_back(static_cast<Mid>(decode_u32(mids, i)));
    }
    if (free.size() < modules_.size()) {
      failed_ = true;
      done_ = true;
      done_cv_.notify_all();
      co_return;
    }

    // 2. Boot each module via the LOAD protocol (§3.5.2) and record its
    //    signature in the directory.
    std::map<std::string, ServerSignature> dir;
    for (std::size_t i = 0; i < modules_.size(); ++i) {
      const Mid target = free[i];
      Bytes load_b;
      auto c = co_await b_get(
          ServerSignature{target, Kernel::kDefaultBootPattern}, 0, &load_b,
          8);
      if (!c.ok() || load_b.size() < 8) {
        failed_ = true;
        break;
      }
      const Pattern load = decode_u64(load_b) & kPatternMask;
      c = co_await b_put(ServerSignature{target, load}, 0,
                         to_bytes(modules_[i].program));
      if (!c.ok()) {
        failed_ = true;
        break;
      }
      c = co_await b_signal(ServerSignature{target, load}, 0);
      if (!c.ok()) {
        failed_ = true;
        break;
      }
      dir[modules_[i].service] =
          ServerSignature{target, modules_[i].pattern};
      booted_.push_back(target);
    }

    // 3. Distribute the directory (modules accept it on the well-known
    //    config pattern they advertised at boot).
    if (!failed_) {
      const Bytes wire = encode_directory(dir);
      for (Mid m : booted_) {
        auto c = co_await b_put(
            ServerSignature{m, kConnectorConfigPattern}, 0, wire);
        if (!c.ok()) failed_ = true;
      }
    }
    directory_ = std::move(dir);
    done_ = true;
    done_cv_.notify_all();
    co_await park_forever();
  }

  bool done() const { return done_; }
  bool failed() const { return failed_; }
  const std::vector<Mid>& booted() const { return booted_; }
  const std::map<std::string, ServerSignature>& directory() const {
    return directory_;
  }
  sim::CondVar& done_cv() { return done_cv_; }

 private:
  std::vector<Module> modules_;
  std::vector<Mid> booted_;
  std::map<std::string, ServerSignature> directory_;
  bool done_ = false;
  bool failed_ = false;
  sim::CondVar done_cv_;
};

}  // namespace soda::sodal
