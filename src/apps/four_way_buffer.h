// Four-way bounded buffer (§4.4.2): two clients, each attached to a
// byte-producing/consuming device, relay each other's output with
// CTRL-S/CTRL-Q flow control in both directions. The interesting move is
// the blocking EXCHANGE used to ship a byte: its reply immediately tells
// the producer whether the remote buffer just filled, so the producing
// device can be stopped without an extra round trip.
#pragma once

#include <deque>

#include "sodal/sodal.h"

namespace soda::apps {

constexpr Pattern kBufferData = kWellKnownBit | 0x4B01;
constexpr Pattern kRestart = kWellKnownBit | 0x4B02;

constexpr std::int32_t kFlowContinue = 0;
constexpr std::int32_t kFlowFull = 1;

/// A simulated character device: produces `to_produce` bytes, one every
/// `in_interval`, unless stopped (CTRL-S); drains one byte every
/// `out_interval` from its output side.
struct Device {
  int to_produce = 0;
  sim::Duration in_interval = sim::kMillisecond;
  sim::Duration out_interval = sim::kMillisecond;
  bool stopped = false;  // CTRL-S sent to the device
  int produced = 0;
  Bytes received;  // what the device was given to output
};

class RelayClient : public sodal::SodalClient {
 public:
  RelayClient(Mid other, Device device, std::size_t queue_cap)
      : other_(other), dev_(device), queue_(queue_cap) {}

  sim::Task on_boot(Mid) override {
    advertise(kBufferData);
    advertise(kRestart);
    co_return;
  }

  sim::Task on_entry(HandlerArgs a) override {
    if (a.invoked_pattern == kBufferData) {
      // Buffer a byte from the other client; the EXCHANGE reply carries
      // the flow-control verdict (§4.4.2).
      Bytes data;
      std::int32_t verdict = kFlowContinue;
      if (queue_.almost_full() || queue_.is_full()) {
        verdict = kFlowFull;
        remote_stopped_ = true;
      }
      Bytes reply(1, static_cast<std::byte>(verdict));
      auto r = co_await accept_current_exchange(verdict, &data, a.put_size,
                                                std::move(reply));
      if (r.status == AcceptStatus::kSuccess && !data.empty() &&
          !queue_.is_full()) {
        queue_.enqueue(data[0]);
        drain_.notify_all();
      }
    } else if (a.invoked_pattern == kRestart) {
      co_await accept_current_signal(0);
      dev_.stopped = false;
      produce_.notify_all();
    }
    co_return;
  }

  sim::Task on_task() override {
    // Two loops run "concurrently" in the paper's single polling task;
    // here they are two coroutine strands over the same state.
    reader_done_ = false;
    read_loop().detach();
    for (;;) {
      // WRITE loop: move buffered bytes into the device's output side.
      while (queue_.is_empty()) {
        if (reader_done_ && remote_producer_done_) {
          done_ = true;
          co_await park_forever();
        }
        co_await wait_on(drain_);
      }
      co_await delay(dev_.out_interval);
      dev_.received.push_back(queue_.dequeue());
      if (remote_stopped_ && queue_.is_empty()) {
        remote_stopped_ = false;
        co_await b_signal(ServerSignature{other_, kRestart}, 0);
      }
    }
  }

  /// Mark that the peer has no more bytes coming (test convenience).
  void expect_no_more_remote() { remote_producer_done_ = true; }

  const Device& device() const { return dev_; }
  bool relay_finished() const { return reader_done_; }
  std::size_t buffered() const { return queue_.size(); }

 private:
  sim::Task read_loop() {
    // READ loop: take bytes the device produced and ship them across.
    for (int i = 0; i < dev_.to_produce; ++i) {
      while (dev_.stopped) co_await wait_on(produce_);
      co_await delay(dev_.in_interval);
      const auto b = static_cast<std::byte>((seed_ + i) & 0xFF);
      ++dev_.produced;
      Bytes status;
      auto c = co_await b_exchange(ServerSignature{other_, kBufferData}, 0,
                                   Bytes(1, b), &status, 1);
      if (!c.ok()) break;
      if (!status.empty() && status[0] == std::byte{kFlowFull}) {
        dev_.stopped = true;  // CTRL-S: stop producing until RESTART
      }
    }
    reader_done_ = true;
    drain_.notify_all();
    co_return;
  }

  Mid other_;
  Device dev_;
  sodal::Queue<std::byte> queue_;
  bool remote_stopped_ = false;
  bool remote_producer_done_ = false;
  bool reader_done_ = false;
  bool done_ = false;
  int seed_ = 0;
  sim::CondVar drain_;
  sim::CondVar produce_;
};

}  // namespace soda::apps
