// A replicated key-value store composed from the library's parts: the
// kind of "utility process" system the paper imagines living on a SODA
// network (database servers in the §1.3 figure). Replicas are plain SODA
// servers; a coordinator client writes through reliable multicast
// (§6.17.1) and reads from any replica, surviving replica crashes via
// the kernel's failure reporting — no extra machinery.
//
// Wire protocol on kStoreReplica (argument = opcode):
//   1 SET      PUT  "key\0value"
//   2 READ     PUT  "key"        (stage 1)
//   3 FETCH    GET  value        (stage 2; REJECTed when absent)
#pragma once

#include <map>
#include <string>

#include "sodal/sodal.h"

namespace soda::apps {

constexpr Pattern kStoreReplica = kWellKnownBit | 0x57DB;

class StoreReplica : public sodal::SodalClient {
 public:
  sim::Task on_boot(Mid) override {
    advertise(kStoreReplica);
    co_return;
  }

  sim::Task on_entry(HandlerArgs a) override {
    if (a.invoked_pattern != kStoreReplica) co_return;
    switch (a.arg) {
      case 1: {  // SET
        Bytes kv;
        auto r = co_await accept_current_put(0, &kv, a.put_size);
        if (r.status != AcceptStatus::kSuccess) break;
        const auto nul = std::find(kv.begin(), kv.end(), std::byte{0});
        if (nul == kv.end()) break;
        const std::string key =
            sodal::to_string(Bytes(kv.begin(), nul));
        data_[key] = Bytes(nul + 1, kv.end());
        ++writes_;
        break;
      }
      case 2: {  // READ stage 1: stage the key
        Bytes key;
        auto r = co_await accept_current_put(0, &key, a.put_size);
        if (r.status == AcceptStatus::kSuccess) {
          staged_[a.asker.mid] = sodal::to_string(key);
        }
        break;
      }
      case 3: {  // READ stage 2: deliver the value
        auto sit = staged_.find(a.asker.mid);
        if (sit == staged_.end()) {
          co_await reject_current();
          break;
        }
        auto dit = data_.find(sit->second);
        staged_.erase(sit);
        if (dit == data_.end()) {
          co_await reject_current();  // absent key
          break;
        }
        Bytes value = dit->second;
        ++reads_;
        co_await accept_current_get(0, std::move(value));
        break;
      }
      default:
        co_await reject_current();
    }
    co_return;
  }

  std::size_t keys() const { return data_.size(); }
  int writes() const { return writes_; }
  int reads() const { return reads_; }
  const Bytes* value(const std::string& key) const {
    auto it = data_.find(key);
    return it == data_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::string, Bytes> data_;
  std::map<Mid, std::string> staged_;
  int writes_ = 0;
  int reads_ = 0;
};

/// Coordinator-side operations, usable from any SodalClient coroutine.
struct StoreWriteResult {
  int replicas_written = 0;
  int replicas_failed = 0;
  bool quorum(std::size_t group) const {
    return replicas_written > static_cast<int>(group) / 2;
  }
};

namespace detail {
inline sim::Task store_set_loop(sodal::SodalClient& c,
                                std::vector<ServerSignature> group,
                                std::string key, Bytes value,
                                sim::Promise<StoreWriteResult> pr) {
  Bytes kv = sodal::to_bytes(key);
  kv.push_back(std::byte{0});
  kv.insert(kv.end(), value.begin(), value.end());
  auto mc = co_await sodal::multicast(c, group, /*arg=*/1, kv);
  StoreWriteResult r;
  r.replicas_written = mc.delivered;
  r.replicas_failed = mc.rejected + mc.failed;
  pr.set(r);
}

inline sim::Task store_get_loop(sodal::SodalClient& c,
                                std::vector<ServerSignature> group,
                                std::string key,
                                sim::Promise<std::optional<Bytes>> pr) {
  // Try replicas in order until one answers; a crashed or key-less
  // replica fails the two-stage read and we move on.
  for (const auto& replica : group) {
    auto s1 = co_await c.b_put(replica, 2, sodal::to_bytes(key));
    if (!s1.ok()) continue;
    Bytes value;
    auto s2 = co_await c.b_get(replica, 3, &value, 2000);
    if (s2.ok()) {
      pr.set(std::move(value));
      co_return;
    }
    if (s2.rejected()) {
      pr.set(std::nullopt);  // authoritative: key absent
      co_return;
    }
  }
  pr.set(std::nullopt);
}
}  // namespace detail

/// Replicate a write to the whole group (resolves with the write count).
inline sim::Future<StoreWriteResult> store_set(
    sodal::SodalClient& c, const std::vector<ServerSignature>& group,
    const std::string& key, Bytes value) {
  sim::Promise<StoreWriteResult> pr;
  auto fut = pr.future();
  fut.set_executor(c.task_gated_executor());
  detail::store_set_loop(c, group, key, std::move(value), pr).detach();
  return fut;
}

/// Read from the first live replica (nullopt: key absent everywhere).
inline sim::Future<std::optional<Bytes>> store_get(
    sodal::SodalClient& c, const std::vector<ServerSignature>& group,
    const std::string& key) {
  sim::Promise<std::optional<Bytes>> pr;
  auto fut = pr.future();
  fut.set_executor(c.task_gated_executor());
  detail::store_get_loop(c, group, key, pr).detach();
  return fut;
}

/// DISCOVER the replica group.
namespace detail {
inline sim::Task store_find_loop(sodal::SodalClient& c,
                                 sim::Promise<std::vector<ServerSignature>>
                                     pr) {
  Bytes mids;
  c.discover_request(kStoreReplica, &mids, 64);
  co_await c.delay(c.k().config().timing.discover_window +
                   20 * sim::kMillisecond);
  std::vector<ServerSignature> group;
  for (std::size_t i = 0; i + 4 <= mids.size(); i += 4) {
    group.push_back(ServerSignature{
        static_cast<Mid>(sodal::decode_u32(mids, i)), kStoreReplica});
  }
  pr.set(std::move(group));
}
}  // namespace detail

inline sim::Future<std::vector<ServerSignature>> store_find_replicas(
    sodal::SodalClient& c) {
  sim::Promise<std::vector<ServerSignature>> pr;
  auto fut = pr.future();
  fut.set_executor(c.task_gated_executor());
  detail::store_find_loop(c, pr).detach();
  return fut;
}

}  // namespace soda::apps
