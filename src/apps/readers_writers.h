// Concurrent readers and writers (§4.4.4): a moderator client arbitrates
// START_READ / START_WRITE / END_READ / END_WRITE with the fairness rule
// of Courtois et al.: a pending write blocks new reads; readers that
// accumulated during a write all go before the next write.
//
// The moderator is pure handler code — the paper's point about flexible
// scheduling: requests are held (not ACCEPTed) until policy admits them.
#pragma once

#include <functional>

#include "sodal/sodal.h"

namespace soda::apps {

constexpr Pattern kStartRead = kWellKnownBit | 0x4001;
constexpr Pattern kStartWrite = kWellKnownBit | 0x4002;
constexpr Pattern kEndRead = kWellKnownBit | 0x4003;
constexpr Pattern kEndWrite = kWellKnownBit | 0x4004;

class Moderator : public sodal::SodalClient {
 public:
  explicit Moderator(std::size_t queue_cap = 64)
      : read_queue_(queue_cap), write_queue_(queue_cap) {}

  sim::Task on_boot(Mid) override {
    advertise(kStartRead);
    advertise(kStartWrite);
    advertise(kEndRead);
    advertise(kEndWrite);
    co_return;
  }

  sim::Task on_entry(HandlerArgs a) override {
    if (a.invoked_pattern == kStartRead) {
      if (write_queue_.is_empty() && writecount_ == 0) {
        co_await accept_current_signal(0);
        ++readcount_;
      } else {
        read_queue_.enqueue(a.asker);  // a write is pending: readers wait
      }
    } else if (a.invoked_pattern == kStartWrite) {
      if (readcount_ == 0 && writecount_ == 0) {
        co_await accept_current_signal(0);
        ++writecount_;
      } else {
        write_queue_.enqueue(a.asker);
      }
    } else if (a.invoked_pattern == kEndRead) {
      co_await accept_current_signal(0);
      --readcount_;
      if (readcount_ == 0 && !write_queue_.is_empty()) {
        auto w = write_queue_.dequeue();
        co_await accept_signal(w, 0);
        ++writecount_;
      }
    } else if (a.invoked_pattern == kEndWrite) {
      co_await accept_current_signal(0);
      --writecount_;
      if (!read_queue_.is_empty()) {
        // Admit every reader that accumulated during the write.
        while (!read_queue_.is_empty()) {
          auto r = read_queue_.dequeue();
          co_await accept_signal(r, 0);
          ++readcount_;
        }
      } else if (!write_queue_.is_empty()) {
        auto w = write_queue_.dequeue();
        co_await accept_signal(w, 0);
        ++writecount_;
      }
    }
    co_return;
  }

  int readcount() const { return readcount_; }
  int writecount() const { return writecount_; }

 private:
  sodal::Queue<RequesterSignature> read_queue_;
  sodal::Queue<RequesterSignature> write_queue_;
  int readcount_ = 0;
  int writecount_ = 0;
};

/// Shared instrumentation standing in for the protected database: tracks
/// concurrent readers/writers so tests can assert the exclusion invariant.
struct DatabaseProbe {
  int readers_inside = 0;
  int writers_inside = 0;
  int max_readers_inside = 0;
  int total_reads = 0;
  int total_writes = 0;
  bool violation = false;

  void enter_read() {
    ++readers_inside;
    max_readers_inside = std::max(max_readers_inside, readers_inside);
    if (writers_inside > 0) violation = true;
  }
  void exit_read() {
    --readers_inside;
    ++total_reads;
  }
  void enter_write() {
    ++writers_inside;
    if (writers_inside > 1 || readers_inside > 0) violation = true;
  }
  void exit_write() {
    --writers_inside;
    ++total_writes;
  }
};

class ReaderClient : public sodal::SodalClient {
 public:
  ReaderClient(Mid moderator, DatabaseProbe* db, int rounds,
               sim::Duration read_time = 3 * sim::kMillisecond)
      : moderator_(moderator), db_(db), rounds_(rounds),
        read_time_(read_time) {}

  sim::Task on_task() override {
    for (int i = 0; i < rounds_; ++i) {
      auto c = co_await b_signal(ServerSignature{moderator_, kStartRead});
      if (!c.ok()) break;
      db_->enter_read();
      co_await delay(read_time_);
      db_->exit_read();
      co_await b_signal(ServerSignature{moderator_, kEndRead});
      co_await delay(read_time_ / 2);
    }
    done = true;
    co_await park_forever();
  }
  bool done = false;

 private:
  Mid moderator_;
  DatabaseProbe* db_;
  int rounds_;
  sim::Duration read_time_;
};

class WriterClient : public sodal::SodalClient {
 public:
  WriterClient(Mid moderator, DatabaseProbe* db, int rounds,
               sim::Duration write_time = 5 * sim::kMillisecond)
      : moderator_(moderator), db_(db), rounds_(rounds),
        write_time_(write_time) {}

  sim::Task on_task() override {
    for (int i = 0; i < rounds_; ++i) {
      auto c = co_await b_signal(ServerSignature{moderator_, kStartWrite});
      if (!c.ok()) break;
      db_->enter_write();
      co_await delay(write_time_);
      db_->exit_write();
      co_await b_signal(ServerSignature{moderator_, kEndWrite});
      co_await delay(write_time_);
    }
    done = true;
    co_await park_forever();
  }
  bool done = false;

 private:
  Mid moderator_;
  DatabaseProbe* db_;
  int rounds_;
  sim::Duration write_time_;
};

}  // namespace soda::apps
