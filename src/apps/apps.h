// Umbrella header for the programmed examples of chapter 4.
#pragma once

#include "apps/bounded_buffer.h"
#include "apps/file_server.h"
#include "apps/four_way_buffer.h"
#include "apps/philosophers.h"
#include "apps/readers_writers.h"
#include "apps/replicated_store.h"
