// Header-only; this TU anchors the library target.
#include "apps/apps.h"
