// Two-way bounded buffer (§4.4.1): producers stream items at a consumer
// that buffers them, with backpressure on both request signatures (CLOSE
// when the pending queue fills) and data (a producer will not issue a new
// PUT until the previous one was ACCEPTED — double buffering lets it keep
// working in the meantime).
#pragma once

#include <functional>

#include "sodal/sodal.h"

namespace soda::apps {

constexpr Pattern kConsumerPattern = kWellKnownBit | 0xB0FF;

class BufferProducer : public sodal::SodalClient {
 public:
  /// Produce `count` items of `item_size` bytes each; `work_time` models
  /// the time to produce one item.
  BufferProducer(int count, std::uint32_t item_size,
                 sim::Duration work_time = 2 * sim::kMillisecond)
      : count_(count), item_size_(item_size), work_time_(work_time) {}

  sim::Task on_completion(HandlerArgs a) override {
    if (a.status == CompletionStatus::kCompleted) ++accepted_;
    ready_ = true;
    readiness_.notify_all();
    co_return;
  }

  sim::Task on_task() override {
    consumer_ = co_await discover(kConsumerPattern);
    for (int i = 0; i < count_; ++i) {
      // Produce into the current buffer (double buffering: the other
      // buffer may still be in flight).
      co_await delay(work_time_);
      Bytes item(item_size_);
      for (std::uint32_t b = 0; b < item_size_; ++b) {
        item[b] = static_cast<std::byte>((i + static_cast<int>(b)) & 0xFF);
      }
      while (!ready_) co_await wait_on(readiness_);
      ready_ = false;
      while (put(consumer_, i, item) == kNoTid) {
        co_await wait_on(readiness_);  // MAXREQUESTS: wait for a slot
      }
      ++produced_;
    }
    // Wait for the final PUTs to complete before dying.
    while (accepted_ < produced_) co_await wait_on(readiness_);
    done_ = true;
    co_await delay(50 * sim::kMillisecond);
  }

  int produced() const { return produced_; }
  int accepted() const { return accepted_; }
  bool done() const { return done_; }

 private:
  int count_;
  std::uint32_t item_size_;
  sim::Duration work_time_;
  ServerSignature consumer_;
  bool ready_ = true;
  int produced_ = 0;
  int accepted_ = 0;
  bool done_ = false;
  sim::CondVar readiness_;
};

class BufferConsumer : public sodal::SodalClient {
 public:
  using ItemSink = std::function<void(std::int32_t seq, const Bytes& data)>;

  BufferConsumer(std::size_t data_buffers, std::size_t pending_slots,
                 sim::Duration consume_time, ItemSink sink)
      : produced_(data_buffers),
        pending_(pending_slots),
        consume_time_(consume_time),
        sink_(std::move(sink)) {}

  sim::Task on_boot(Mid) override {
    advertise(kConsumerPattern);
    co_return;
  }

  sim::Task on_entry(HandlerArgs a) override {
    if (a.invoked_pattern != kConsumerPattern) co_return;
    if (produced_.is_full()) {
      // No room for data: hold the signature; stop arrivals when the
      // signature queue fills too (flow control, §4.4.1).
      pending_.enqueue(Pending{a.asker, a.arg, a.put_size});
      if (pending_.is_full()) close();
    } else {
      Item it;
      it.seq = a.arg;
      auto r = co_await accept_current_put(0, &it.data, a.put_size);
      if (r.status == AcceptStatus::kSuccess) {
        produced_.enqueue(std::move(it));
        work_.notify_all();
      }
    }
    co_return;
  }

  sim::Task on_task() override {
    for (;;) {
      while (produced_.is_empty() && pending_.is_empty()) {
        co_await wait_on(work_);
      }
      // Drain one buffered pending producer first so signatures keep
      // flowing in arrival order.
      if (!pending_.is_empty() && !produced_.is_full()) {
        const bool was_full = pending_.is_full();
        Pending p = pending_.dequeue();
        if (was_full) open();
        Item it;
        it.seq = p.arg;
        auto r = co_await accept_put(p.from, 0, &it.data, p.put_size);
        if (r.status == AcceptStatus::kSuccess) {
          produced_.enqueue(std::move(it));
        }
      }
      if (!produced_.is_empty()) {
        Item it = produced_.dequeue();
        co_await delay(consume_time_);  // process_data
        ++consumed_;
        if (sink_) sink_(it.seq, it.data);
      }
    }
  }

  int consumed() const { return consumed_; }
  std::size_t buffered() const { return produced_.size(); }

 private:
  struct Item {
    std::int32_t seq = 0;
    Bytes data;
  };
  struct Pending {
    RequesterSignature from;
    std::int32_t arg;
    std::uint32_t put_size;
  };

  sodal::Queue<Item> produced_;
  sodal::Queue<Pending> pending_;
  sim::Duration consume_time_;
  ItemSink sink_;
  int consumed_ = 0;
  sim::CondVar work_;
};

}  // namespace soda::apps
