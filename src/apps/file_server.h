// File service (§4.4.5): a client OPENs a file by name through a
// well-known pattern and receives a fresh GETUNIQUEID pattern bound to
// that file — the file descriptor. All further operations use <fs, fd>.
// The server handler only queues operations; the task performs them
// (the paper's scheduling split).
#pragma once

#include <map>
#include <string>

#include "sodal/sodal.h"

namespace soda::apps {

constexpr Pattern kFileServerPattern = kWellKnownBit | 0xF11E;
constexpr Pattern kFileOpenPattern = kWellKnownBit | 0xF110;

// Operation codes carried in the REQUEST argument.
constexpr std::int32_t kFsRead = 1;
constexpr std::int32_t kFsWrite = 2;
constexpr std::int32_t kFsSeek = 3;
constexpr std::int32_t kFsClose = 4;

/// In-memory disk standing in for the PDP-11's drive.
class Disk {
 public:
  Bytes& file(const std::string& name) { return files_[name]; }
  bool exists(const std::string& name) const { return files_.count(name) > 0; }
  std::size_t file_count() const { return files_.size(); }

 private:
  std::map<std::string, Bytes> files_;
};

class FileServer : public sodal::SodalClient {
 public:
  explicit FileServer(Disk* disk, std::size_t op_queue = 64)
      : disk_(disk), ops_(op_queue) {}

  sim::Task on_boot(Mid) override {
    advertise(kFileServerPattern);
    advertise(kFileOpenPattern);
    co_return;
  }

  sim::Task on_entry(HandlerArgs a) override {
    if (a.invoked_pattern == kFileOpenPattern) {
      // OPEN: EXCHANGE of the file name for a descriptor pattern.
      Bytes name_b;
      const Pattern fd = unique_id();
      advertise(fd);
      auto r = co_await accept_current_exchange(0, &name_b, a.put_size,
                                                sodal::encode_u64(fd));
      if (r.status == AcceptStatus::kSuccess) {
        Session s;
        s.name = sodal::to_string(name_b);
        s.cursor = 0;
        sessions_[fd] = s;
        ++opens_;
      } else {
        unadvertise(fd);
      }
      co_return;
    }
    if (a.invoked_pattern == kFileServerPattern) {
      co_await reject_current();  // the locator pattern takes no requests
      co_return;
    }
    // A file-descriptor pattern: queue the operation for the task.
    if (sessions_.count(a.invoked_pattern) == 0) {
      co_await reject_current();
      co_return;
    }
    ops_.enqueue(Op{a.asker, a.arg, a.invoked_pattern, a.put_size,
                    a.get_size});
    work_.notify_all();
    co_return;
  }

  sim::Task on_task() override {
    for (;;) {
      while (ops_.is_empty()) co_await wait_on(work_);
      Op op = ops_.dequeue();
      auto sit = sessions_.find(op.fd);
      if (sit == sessions_.end()) {
        co_await reject(op.from);
        continue;
      }
      Session& s = sit->second;
      Bytes& data = disk_->file(s.name);
      switch (op.code) {
        case kFsRead: {
          const std::size_t avail =
              s.cursor < data.size() ? data.size() - s.cursor : 0;
          const std::size_t n =
              std::min<std::size_t>(op.get_size, avail);
          Bytes chunk(data.begin() + static_cast<std::ptrdiff_t>(s.cursor),
                      data.begin() +
                          static_cast<std::ptrdiff_t>(s.cursor + n));
          // A short final chunk is a normal partial return (§4.1.2).
          auto r = co_await accept_get(op.from, 0, std::move(chunk));
          if (r.status == AcceptStatus::kSuccess) s.cursor += n;
          break;
        }
        case kFsWrite: {
          Bytes incoming;
          auto r = co_await accept_put(op.from, 0, &incoming, op.put_size);
          if (r.status == AcceptStatus::kSuccess) {
            if (s.cursor + incoming.size() > data.size()) {
              data.resize(s.cursor + incoming.size());
            }
            std::copy(incoming.begin(), incoming.end(),
                      data.begin() + static_cast<std::ptrdiff_t>(s.cursor));
            s.cursor += incoming.size();
          }
          break;
        }
        case kFsSeek: {
          Bytes pos;
          auto r = co_await accept_put(op.from, 0, &pos, op.put_size);
          if (r.status == AcceptStatus::kSuccess) {
            s.cursor = sodal::decode_u32(pos);
          }
          break;
        }
        case kFsClose: {
          co_await accept_signal(op.from, 0);
          unadvertise(op.fd);
          sessions_.erase(op.fd);
          break;
        }
        default:
          co_await reject(op.from);
      }
    }
  }

  std::size_t opens() const { return opens_; }
  std::size_t open_sessions() const { return sessions_.size(); }

 private:
  struct Session {
    std::string name;
    std::size_t cursor = 0;
  };
  struct Op {
    RequesterSignature from;
    std::int32_t code;
    Pattern fd;
    std::uint32_t put_size;
    std::uint32_t get_size;
  };

  Disk* disk_;
  std::map<Pattern, Session> sessions_;
  sodal::Queue<Op> ops_;
  sim::CondVar work_;
  std::size_t opens_ = 0;
};

// ---- client-side protocol helpers (§4.4.5 "client protocol") ----

struct FileHandle {
  ServerSignature sig;  // <fs MID, fd pattern>
  bool valid() const { return sig.pattern != 0; }
};

namespace detail {
inline sim::Task fs_open_loop(sodal::SodalClient& c, Mid fs,
                              std::string name,
                              sim::Promise<FileHandle> pr) {
  Bytes fd_b;
  auto done = co_await c.b_exchange(ServerSignature{fs, kFileOpenPattern}, 0,
                                    sodal::to_bytes(name), &fd_b, 8);
  if (!done.ok() || fd_b.size() < 8) {
    pr.set(FileHandle{});
    co_return;
  }
  pr.set(FileHandle{ServerSignature{fs, sodal::decode_u64(fd_b) &
                                            kPatternMask}});
}
}  // namespace detail

inline sim::Future<FileHandle> fs_open(sodal::SodalClient& c, Mid fs,
                                       const std::string& name) {
  sim::Promise<FileHandle> pr;
  auto fut = pr.future();
  fut.set_executor(c.executor_for_current_context());
  detail::fs_open_loop(c, fs, name, pr).detach();
  return fut;
}

inline sim::Future<sodal::Completion> fs_read(sodal::SodalClient& c,
                                              const FileHandle& f,
                                              Bytes* into, std::uint32_t n) {
  return c.b_get(f.sig, kFsRead, into, n);
}
inline sim::Future<sodal::Completion> fs_write(sodal::SodalClient& c,
                                               const FileHandle& f,
                                               Bytes data) {
  return c.b_put(f.sig, kFsWrite, std::move(data));
}
inline sim::Future<sodal::Completion> fs_seek(sodal::SodalClient& c,
                                              const FileHandle& f,
                                              std::uint32_t pos) {
  return c.b_put(f.sig, kFsSeek, sodal::encode_u32(pos));
}
inline sim::Future<sodal::Completion> fs_close(sodal::SodalClient& c,
                                               const FileHandle& f) {
  return c.b_signal(f.sig, kFsClose);
}

}  // namespace soda::apps
