// Dining philosophers with deadlock detection (§4.4.3) — the thesis's
// novel solution. Each philosopher owns its right fork; its left fork is
// owned by the left neighbour. A separate deadlock-detector client,
// woken by the timeserver, walks the ring asking each philosopher whether
// it is "needful" (holds its left fork, right fork taken). If the ring
// closes and the first philosopher's state is unchanged, deadlock is
// declared and one philosopher is told to GIVE_BACK its fork; a
// LIST_OF_NICE_PHILOS rotation keeps the victim choice fair.
//
// Where the paper compares the TID of the victim's outstanding fork
// REQUEST to detect "state unchanged between probes", we use a per-
// philosopher state version counter — the same freshness argument with
// one fewer special case (the paper's own handler NILs the TID out).
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "sodal/sodal.h"
#include "sodal/timeserver.h"

namespace soda::apps {

constexpr Pattern kGetFork = kWellKnownBit | 0xD101;
constexpr Pattern kPutFork = kWellKnownBit | 0xD102;
constexpr Pattern kReturnFork = kWellKnownBit | 0xD103;
constexpr Pattern kCheck = kWellKnownBit | 0xD104;
constexpr Pattern kGiveBack = kWellKnownBit | 0xD105;

class Philosopher : public sodal::SodalClient {
 public:
  enum class Fork { kIdle, kMine, kHis };

  /// `left` is the MID of the left neighbour (who owns our left fork).
  /// `greedy` philosophers never think between meals — an all-greedy
  /// table deadlocks almost immediately, exercising the detector.
  Philosopher(Mid left, sim::Duration think_time, sim::Duration eat_time,
              bool greedy = false)
      : left_(left),
        think_time_(think_time),
        eat_time_(eat_time),
        greedy_(greedy) {}

  sim::Task on_boot(Mid) override {
    advertise(kGetFork);
    advertise(kPutFork);
    advertise(kReturnFork);
    advertise(kCheck);
    advertise(kGiveBack);
    co_return;
  }

  sim::Task on_completion(HandlerArgs a) override {
    if (my_request_ != kNoTid && a.asker.tid == my_request_) {
      my_request_ = kNoTid;
      left_fork_ = Fork::kMine;  // the left fork was granted (or returned)
      bump();
    }
    co_return;
  }

  sim::Task on_entry(HandlerArgs a) override {
    if (a.invoked_pattern == kPutFork) {
      // Our right neighbour... no: the PUT_FORK comes from the philosopher
      // to our right returning OUR fork — the fork we own came back idle.
      co_await accept_current_signal(0);
      own_fork_ = Fork::kIdle;
      if (his_request_) {
        own_fork_ = Fork::kHis;
        auto who = *his_request_;
        his_request_.reset();
        co_await accept_signal(who, 0);
      }
      bump();
    } else if (a.invoked_pattern == kGetFork) {
      if (own_fork_ == Fork::kMine) {
        his_request_ = a.asker;  // busy eating: grant on release
      } else {
        own_fork_ = Fork::kHis;
        co_await accept_current_signal(0);
      }
      bump();
    } else if (a.invoked_pattern == kCheck) {
      // Needful: hold the left fork, right fork taken by the neighbour.
      if (left_fork_ == Fork::kMine && own_fork_ == Fork::kHis) {
        co_await accept_current_get(0, sodal::encode_u64(version_));
      } else {
        co_await reject_current();
      }
    } else if (a.invoked_pattern == kGiveBack) {
      co_await accept_current_signal(0);
      if (left_fork_ == Fork::kMine) {
        // Return the left fork to its owner; the RETURN_FORK signal also
        // re-requests it: its completion is the re-grant (§4.4.3).
        my_request_ = signal(ServerSignature{left_, kReturnFork}, 0);
        left_fork_ = Fork::kHis;
        ++give_backs_;
        bump();
      }
    } else if (a.invoked_pattern == kReturnFork) {
      // Our fork came back from a deadlock break; the asker wants it
      // again once the neighbourhood has eaten. Do not ACCEPT yet.
      own_fork_ = Fork::kMine;
      his_request_ = a.asker;
      bump();
    }
    co_return;
  }

  sim::Task on_task() override {
    for (;;) {
      if (!greedy_) co_await delay(think_time_);  // think
      my_request_ = signal(ServerSignature{left_, kGetFork}, 0);
      while (left_fork_ != Fork::kMine) co_await wait_on(changed_);
      while (!grab_own_fork() || left_fork_ != Fork::kMine) {
        co_await wait_on(changed_);  // retest: we may have given it back
      }
      co_await delay(eat_time_);  // eat
      ++meals_;
      bump();
      co_await b_signal(ServerSignature{left_, kPutFork}, 0);
      own_fork_release();
    }
  }

  int meals() const { return meals_; }
  int give_backs() const { return give_backs_; }
  std::uint64_t version() const { return version_; }

 private:
  bool grab_own_fork() {
    // The paper brackets this with CLOSE/OPEN; handler invocations cannot
    // interleave with task code in the coroutine model, so the test is
    // already atomic — kept as a function to mirror the listing.
    if (own_fork_ == Fork::kHis) return false;
    own_fork_ = Fork::kMine;
    bump();
    return true;
  }

  void own_fork_release() {
    own_fork_ = Fork::kIdle;
    left_fork_ = Fork::kIdle;
    if (his_request_) {
      own_fork_ = Fork::kHis;
      auto who = *his_request_;
      his_request_.reset();
      grant_ = accept_signal(who, 0);  // fire-and-forget grant
    }
    bump();
  }

  void bump() {
    ++version_;
    changed_.notify_all();
  }

  Mid left_;
  sim::Duration think_time_;
  sim::Duration eat_time_;
  bool greedy_;
  Fork left_fork_ = Fork::kIdle;  // the fork our left neighbour owns
  Fork own_fork_ = Fork::kIdle;   // the fork we own (our right)
  Tid my_request_ = kNoTid;
  std::optional<RequesterSignature> his_request_;
  sim::Future<AcceptResult> grant_;
  sim::CondVar changed_;
  std::uint64_t version_ = 0;
  int meals_ = 0;
  int give_backs_ = 0;
};

class DeadlockDetector : public sodal::SodalClient {
 public:
  DeadlockDetector(std::vector<Mid> philosophers, ServerSignature timeserver,
                   std::int32_t interval_ms = 40)
      : phils_(std::move(philosophers)),
        timeserver_(timeserver),
        interval_ms_(interval_ms) {
    for (std::size_t i = 0; i < phils_.size(); ++i) {
      nice_.insert(static_cast<int>(i));
    }
  }

  sim::Task on_task() override {
    int victim = pick_victim();
    for (;;) {
      // Sleep on the timeserver (§4.3.2), then scan for deadlock.
      auto alarm = co_await b_signal(timeserver_, interval_ms_);
      if (!alarm.ok()) co_return;  // timeserver gone
      ++scans_;

      Bytes v1;
      auto c = co_await b_get(sig(victim), 0, &v1, 8);
      if (!c.ok()) continue;  // victim not needful: no deadlock
      bool ring_needful = true;
      Bytes v2;
      int cur = victim;
      do {
        cur = (cur + 1) % static_cast<int>(phils_.size());
        c = co_await b_get(sig(cur), 0, &v2, 8);
        if (!c.ok()) {
          ring_needful = false;
          break;
        }
      } while (cur != victim);
      if (!ring_needful) continue;
      if (sodal::decode_u64(v1) != sodal::decode_u64(v2)) continue;
      // Deadlock: every philosopher needful and the probe anchor never
      // changed state. Break it, then rotate the victim for fairness.
      ++breaks_;
      co_await b_signal(ServerSignature{phils_[static_cast<std::size_t>(
                                            victim)],
                                        kGiveBack},
                        0);
      victim = pick_victim();
    }
  }

  int scans() const { return scans_; }
  int breaks() const { return breaks_; }

 protected:
  /// Exposed for fairness tests: the LIST_OF_NICE_PHILOS rotation.
  int pick_victim() {
    if (nice_.empty()) {
      for (std::size_t i = 0; i < phils_.size(); ++i) {
        nice_.insert(static_cast<int>(i));
      }
    }
    // Deterministic rotation through LIST_OF_NICE_PHILOS.
    int v = *nice_.begin();
    nice_.erase(nice_.begin());
    return v;
  }

 private:
  ServerSignature sig(int i) {
    return ServerSignature{phils_[static_cast<std::size_t>(i)], kCheck};
  }

  std::vector<Mid> phils_;
  ServerSignature timeserver_;
  std::int32_t interval_ms_;
  std::set<int> nice_;
  int scans_ = 0;
  int breaks_ = 0;
};

}  // namespace soda::apps
