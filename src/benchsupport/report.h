// Machine-readable bench output: every bench_* binary appends JSONL rows
// to BENCH_<name>.jsonl alongside its human-readable tables, so plots and
// regression checks can consume runs without scraping stdout.
//
// Environment knobs:
//   SODA_BENCH_JSONL=0        disable writing entirely
//   SODA_BENCH_JSONL_DIR=dir  write the file under `dir` (default: cwd)
#pragma once

#include <fstream>
#include <string>

#include "stats/json.h"
#include "stats/metrics.h"

namespace soda::bench {

class JsonlReport {
 public:
  /// Opens (truncates) BENCH_<name>.jsonl unless disabled by environment.
  explicit JsonlReport(const std::string& name);

  bool enabled() const { return out_.is_open(); }
  const std::string& path() const { return path_; }

  /// Append one row; "kind" should identify the row type for consumers.
  void row(const stats::JsonObject& obj);
  /// Append a pre-serialized JSON line (must be one object, no newline).
  void raw(const std::string& json_line);
  /// Append the per-node + aggregate metrics rows for a finished run.
  void metrics(const stats::MetricsHub& hub, const std::string& label);
  /// Append pre-formatted JSONL rows (e.g. StreamResult::metrics_jsonl).
  void block(const std::string& jsonl);

 private:
  std::string path_;
  std::ofstream out_;
};

}  // namespace soda::bench
