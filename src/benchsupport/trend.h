// Cross-bench trend report: ingest every BENCH_*.jsonl a bench or tool
// run left behind (paper tables, chaos sweeps, scaling matrix) and boil
// them down to one comparable summary — the place to look when deciding
// whether a change moved any number that matters.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace soda::bench {

/// One parsed JSONL row: file it came from + flat key/value map.
struct TrendRow {
  std::string file;
  std::map<std::string, std::string> fields;

  const std::string* get(const std::string& key) const {
    auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
  std::optional<double> num(const std::string& key) const;
  std::string str(const std::string& key) const;
};

/// Paired base/optimized scaling measurements for one (workload, nodes).
struct ScaleTrend {
  std::string workload;
  int nodes = 0;
  double loss = 0;
  // 128/256-node tiers run twice with exponential retransmit backoff
  // off/on; the flag is part of the aggregation key so they don't merge.
  bool backoff = false;
  // Anycast pool size for the contention workload (0 = the legacy single
  // server). Part of the aggregation key: the pool sweep emits one row
  // per size and the CI gate compares goodput across them.
  int pool_size = 0;
  // Bus segments (1 = the classic single broadcast bus). Part of the
  // aggregation key so the internetwork tiers (doc/INTERNET.md) never
  // merge with the single-segment rows they're compared against.
  int segments = 1;
  // Simulation engine ("" / "serial" / "classic" = the classic serial
  // loop, "windowed" = the serial epoch-2 window reference, "parallel" /
  // "concurrent" = sim::ParallelEngine) and its worker count. Part of
  // the aggregation key so engine rows diff against their own baselines,
  // never against other engines on the same topology.
  std::string engine;
  int workers = 0;
  // Pinned-hash epoch the row was recorded under (chaos::kHashEpoch;
  // rows predating the hash_epoch column aggregate as epoch 1). Part of
  // the aggregation key: the epoch-2 partition-local RNG streams changed
  // every trace hash and event count, so epoch-1 rows must never pair
  // with epoch-2 rows in a trend diff.
  int epoch = 1;
  double opt_relayed = 0;  // gateway store-and-forward copies (segments > 1)
  double base_events = 0, opt_events = 0;        // events executed
  double base_scheduled = 0, opt_scheduled = 0;  // timer churn
  double base_frames = 0, opt_frames = 0;
  double opt_filtered = 0;  // broadcast deliveries the NIC filter skipped
  double base_ops = 0, opt_ops = 0, ops_expected = 0;
  // Overload columns (contention workload, doc/OVERLOAD.md): goodput in
  // ops per simulated second, per-client min/max ops (fairness), retry-
  // budget exhaustions, admission-control sheds.
  double base_goodput = 0, opt_goodput = 0;
  double base_ops_min = 0, opt_ops_min = 0;
  double base_ops_max = 0, opt_ops_max = 0;
  double base_timedout = 0, opt_timedout = 0;
  double base_shed = 0, opt_shed = 0;
  // Host-dependent engine-throughput columns (events / wall-second and
  // VmHWM). Informational in reports; the diff gate only flags a >3x
  // collapse so machine noise never fails CI.
  double base_ev_wall = 0, opt_ev_wall = 0;
  double opt_rss_kb = 0;
  double violations = 0;  // summed over both modes — should stay 0

  /// Percent reduction of `base` -> `opt` (0 when base is 0).
  static double win(double base, double opt) {
    return base > 0 ? 100.0 * (base - opt) / base : 0.0;
  }
};

struct TrendReport {
  std::vector<std::string> files;  // BENCH files ingested, sorted
  std::vector<TrendRow> rows;      // all parsed rows

  // chaos: per scenario, sweep totals
  struct ChaosLine {
    std::string scenario;
    long runs = 0;
    long seeds_swept = 0;
    long failures = 0;
  };
  std::vector<ChaosLine> chaos;

  // paper streams: worst relative retransmit-free ms_per_op per op kind
  struct StreamLine {
    std::string op;
    long rows = 0;
    double best_ms = 0, worst_ms = 0;
    long unfinished = 0;
  };
  std::vector<StreamLine> streams;

  std::vector<ScaleTrend> scale;

  // fleet: real-process harness runs (BENCH_fleet.jsonl, doc/FLEET.md)
  struct FleetLine {
    std::string scenario;
    long runs = 0;     // fleet_run rows that actually executed
    long skipped = 0;  // fleet_run rows skipped (no fork/sockets)
    long violations = 0;
    long wedged = 0;
    long unexpected_exits = 0;
    long twin_mismatches = 0;  // fleet_compare rows with match=false
  };
  std::vector<FleetLine> fleet;
};

/// Parse the given JSONL files (unreadable files are skipped and recorded
/// with a trailing '!' in `files`) and aggregate the known row kinds.
TrendReport build_trend_report(const std::vector<std::string>& paths);

/// Find BENCH_*.jsonl files directly under `dir`, sorted by name.
std::vector<std::string> find_bench_files(const std::string& dir);

/// Render the report as the human-readable summary the CLI prints.
std::string format_trend_report(const TrendReport& r);

/// Render a before/after comparison of two snapshots (e.g. the BENCH
/// files from the base branch vs. this PR): chaos failure deltas, paper-
/// stream ms/op drift, and scaling/goodput deltas per (workload, nodes,
/// loss). Keys present in only one snapshot are flagged.
std::string format_trend_diff(const TrendReport& before,
                              const TrendReport& after);

}  // namespace soda::bench
