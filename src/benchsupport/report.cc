#include "benchsupport/report.h"

#include <cstdlib>

namespace soda::bench {

JsonlReport::JsonlReport(const std::string& name) {
  const char* toggle = std::getenv("SODA_BENCH_JSONL");
  if (toggle && std::string(toggle) == "0") return;
  const char* dir = std::getenv("SODA_BENCH_JSONL_DIR");
  path_ = dir && *dir ? std::string(dir) + "/" : std::string();
  path_ += "BENCH_" + name + ".jsonl";
  out_.open(path_, std::ios::trunc);
}

void JsonlReport::row(const stats::JsonObject& obj) {
  if (out_.is_open()) out_ << obj.str() << '\n';
}

void JsonlReport::raw(const std::string& json_line) {
  if (out_.is_open()) out_ << json_line << '\n';
}

void JsonlReport::block(const std::string& jsonl) {
  if (!out_.is_open() || jsonl.empty()) return;
  out_ << jsonl;
  if (jsonl.back() != '\n') out_ << '\n';
}

void JsonlReport::metrics(const stats::MetricsHub& hub,
                          const std::string& label) {
  if (out_.is_open()) stats::dump_json(out_, hub, label);
}

}  // namespace soda::bench
