#include "benchsupport/stream.h"

#include <algorithm>
#include <sstream>

#include "core/network.h"
#include "sodal/sodal.h"
#include "stats/metrics.h"

namespace soda::bench {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kSignal: return "SIGNAL";
    case OpKind::kPut: return "PUT";
    case OpKind::kGet: return "GET";
    case OpKind::kExchange: return "EXCHANGE";
  }
  return "?";
}

namespace {

constexpr Pattern kStreamPattern = kWellKnownBit | 0x57EA;

/// Server that ACCEPTs every request immediately in its handler — the
/// configuration of the paper's main performance tables.
class ImmediateServer : public sodal::SodalClient {
 public:
  explicit ImmediateServer(std::uint32_t reply_bytes)
      : reply_bytes_(reply_bytes) {}

  sim::Task on_boot(Mid) override {
    advertise(kStreamPattern);
    co_return;
  }

  sim::Task on_entry(HandlerArgs a) override {
    Bytes take;
    co_await accept_current_exchange(
        0, &take, a.put_size,
        Bytes(std::min(reply_bytes_, a.get_size), std::byte{0x5A}));
    co_return;
  }

 private:
  std::uint32_t reply_bytes_;
};

/// Server that queues arrivals in the handler and ACCEPTs from the task —
/// the "queued" rows compared against *MOD port calls (§5.5).
class QueuedServer : public sodal::SodalClient {
 public:
  explicit QueuedServer(std::uint32_t reply_bytes)
      : reply_bytes_(reply_bytes) {}

  sim::Task on_boot(Mid) override {
    advertise(kStreamPattern);
    co_return;
  }

  sim::Task on_entry(HandlerArgs a) override {
    charge_compute(350);  // EnQueue (the paper charges 0.7 ms per queued op)
    waiting_.push_back(Entry{a.asker, a.put_size, a.get_size});
    work_.notify_all();
    co_return;
  }

  sim::Task on_task() override {
    for (;;) {
      while (waiting_.empty()) co_await wait_on(work_);
      charge_compute(350);  // DeQueue
      Entry e = waiting_.front();
      waiting_.erase(waiting_.begin());
      Bytes take;
      co_await accept_exchange(
          e.from, 0, &take, e.put_size,
          Bytes(std::min(reply_bytes_, e.get_size), std::byte{0x5A}));
    }
  }

 private:
  struct Entry {
    RequesterSignature from;
    std::uint32_t put_size;
    std::uint32_t get_size;
  };
  std::uint32_t reply_bytes_;
  std::vector<Entry> waiting_;
  sim::CondVar work_;
};

struct Probe {
  sim::Time warmup_at = 0;
  sim::Time done_at = 0;
  std::size_t warmup_packets = 0;
  std::size_t warmup_bytes = 0;
  int completed = 0;
  bool finished = false;
};

/// The requester: keeps up to MAXREQUESTS operations outstanding
/// (non-blocking form) or issues them one at a time (blocking form).
class StreamRequester : public sodal::SodalClient {
 public:
  StreamRequester(const StreamOptions& o, Mid server, Probe* probe,
                  std::function<void()> on_warmup)
      : o_(o), server_(server), probe_(probe),
        on_warmup_(std::move(on_warmup)) {
    put_bytes_ = (o.kind == OpKind::kPut || o.kind == OpKind::kExchange)
                     ? o.words * 2
                     : 0;
    get_bytes_ = (o.kind == OpKind::kGet || o.kind == OpKind::kExchange)
                     ? o.words * 2
                     : 0;
  }

  sim::Task on_completion(HandlerArgs) override {
    note_completion();
    if (!o_.blocking) issue_some();
    co_return;
  }

  sim::Task on_task() override {
    ServerSignature sig{server_, kStreamPattern};
    if (o_.blocking) {
      for (int i = 0; i < o_.ops; ++i) {
        Bytes in;
        switch (o_.kind) {
          case OpKind::kSignal:
            co_await b_signal(sig, 0);
            break;
          case OpKind::kPut:
            co_await b_put(sig, 0, Bytes(put_bytes_, std::byte{0x11}));
            break;
          case OpKind::kGet:
            co_await b_get(sig, 0, &in, get_bytes_);
            break;
          case OpKind::kExchange:
            co_await b_exchange(sig, 0, Bytes(put_bytes_, std::byte{0x11}),
                                &in, get_bytes_);
            break;
        }
        note_completion();
      }
      co_await park_forever();
    }
    issue_some();
    co_await park_forever();
  }

 private:
  void note_completion() {
    ++probe_->completed;
    if (probe_->completed == o_.warmup) {
      probe_->warmup_at = sim().now();
      if (on_warmup_) on_warmup_();
    }
    if (probe_->completed >= o_.ops) {
      if (!probe_->finished) {
        probe_->finished = true;
        probe_->done_at = sim().now();
      }
    }
  }

  void issue_some() {
    ServerSignature sig{server_, kStreamPattern};
    while (issued_ < o_.ops && k().live_requests() < o_.max_requests) {
      get_slots_.emplace_back();
      Bytes* in = &get_slots_.back();
      Tid t = kNoTid;
      switch (o_.kind) {
        case OpKind::kSignal:
          t = signal(sig, 0);
          break;
        case OpKind::kPut:
          t = put(sig, 0, Bytes(put_bytes_, std::byte{0x11}));
          break;
        case OpKind::kGet:
          t = get(sig, 0, in, get_bytes_);
          break;
        case OpKind::kExchange:
          t = exchange(sig, 0, Bytes(put_bytes_, std::byte{0x11}), in,
                       get_bytes_);
          break;
      }
      if (t == kNoTid) break;
      ++issued_;
    }
  }

  StreamOptions o_;
  Mid server_;
  Probe* probe_;
  std::function<void()> on_warmup_;
  std::uint32_t put_bytes_ = 0;
  std::uint32_t get_bytes_ = 0;
  int issued_ = 0;
  std::deque<Bytes> get_slots_;
};

}  // namespace

StreamResult run_stream(const StreamOptions& options) {
  Network::Options netopts;
  netopts.seed = options.seed;
  netopts.bus.loss_probability = options.loss;
  Network net(netopts);

  NodeConfig cfg;
  cfg.pipelined = options.pipelined;
  cfg.max_requests = options.max_requests;
  cfg.timing = options.timing;

  const std::uint32_t reply_bytes =
      (options.kind == OpKind::kGet || options.kind == OpKind::kExchange)
          ? options.words * 2
          : 0;

  Node* server_node = nullptr;
  if (options.queued_accept) {
    net.spawn<QueuedServer>(cfg, reply_bytes);
  } else {
    net.spawn<ImmediateServer>(cfg, reply_bytes);
  }
  server_node = &net.node(0);

  Probe probe;
  Node* req_node = nullptr;
  auto on_warmup = [&net, &probe, &server_node, &req_node]() {
    probe.warmup_packets = net.bus().frames_sent();
    probe.warmup_bytes = net.bus().bytes_sent();
    server_node->ledger().reset();
    if (req_node) req_node->ledger().reset();
  };
  net.spawn<StreamRequester>(cfg, options, /*server=*/0, &probe, on_warmup);
  req_node = &net.node(1);

  // Run until the stream finishes (cap at a generous simulated budget).
  const sim::Duration cap = static_cast<sim::Duration>(options.ops) *
                                400 * sim::kMillisecond +
                            10 * sim::kSecond;
  while (!probe.finished && net.sim().now() < cap) {
    net.run_for(200 * sim::kMillisecond);
  }
  net.check_clients();

  StreamResult r;
  r.completed = probe.completed;
  r.finished = probe.finished;
  r.retransmits = net.sim().metrics().total(stats::Counter::kRetransmits);
  r.busy_nacks = net.sim().metrics().total(stats::Counter::kBusyNacks);
  {
    std::ostringstream os;
    stats::dump_json(os, net.sim().metrics(),
                     std::string("stream_") + to_string(options.kind));
    r.metrics_jsonl = os.str();
  }
  if (!probe.finished || options.ops <= options.warmup) return r;

  const double n = options.ops - options.warmup;
  r.ms_per_op = sim::to_ms(probe.done_at - probe.warmup_at) / n;
  r.packets_per_op =
      static_cast<double>(net.bus().frames_sent() - probe.warmup_packets) / n;
  const double bytes =
      static_cast<double>(net.bus().bytes_sent() - probe.warmup_bytes) / n;
  r.bytes_per_op = bytes;
  r.wire_ms_per_op =
      bytes * static_cast<double>(net.bus().config().us_per_byte) / 1000.0;
  for (int c = 0; c < static_cast<int>(CostCategory::kCount); ++c) {
    const auto cat = static_cast<CostCategory>(c);
    r.cost_ms[c] = sim::to_ms(server_node->ledger().total(cat) +
                              req_node->ledger().total(cat)) /
                   n;
  }
  return r;
}

}  // namespace soda::bench
