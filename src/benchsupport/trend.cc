#include "benchsupport/trend.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "stats/json.h"

namespace soda::bench {

std::optional<double> TrendRow::num(const std::string& key) const {
  const std::string* v = get(key);
  if (!v) return std::nullopt;
  char* end = nullptr;
  const double d = std::strtod(v->c_str(), &end);
  if (end == v->c_str()) return std::nullopt;
  return d;
}

std::string TrendRow::str(const std::string& key) const {
  const std::string* v = get(key);
  return v ? *v : std::string();
}

std::vector<std::string> find_bench_files(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& e : std::filesystem::directory_iterator(dir, ec)) {
    if (!e.is_regular_file()) continue;
    const std::string name = e.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 &&
        name.size() > 6 + 6 &&  // "BENCH_" + ".jsonl"
        name.compare(name.size() - 6, 6, ".jsonl") == 0) {
      out.push_back(e.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

void aggregate_chaos(TrendReport& r) {
  std::map<std::string, TrendReport::ChaosLine> by_scenario;
  for (const TrendRow& row : r.rows) {
    const std::string kind = row.str("kind");
    if (kind != "chaos_run" && kind != "chaos_sweep") continue;
    TrendReport::ChaosLine& line = by_scenario[row.str("scenario")];
    line.scenario = row.str("scenario");
    if (kind == "chaos_run") {
      ++line.runs;
      if (row.num("ok").value_or(1) == 0) ++line.failures;
    } else {
      line.seeds_swept += static_cast<long>(row.num("ran").value_or(0));
      line.failures += static_cast<long>(row.num("failures").value_or(0));
    }
  }
  for (auto& [name, line] : by_scenario) r.chaos.push_back(line);
}

void aggregate_fleet(TrendReport& r) {
  std::map<std::string, TrendReport::FleetLine> by_scenario;
  for (const TrendRow& row : r.rows) {
    const std::string kind = row.str("kind");
    if (kind != "fleet_run" && kind != "fleet_compare") continue;
    TrendReport::FleetLine& line = by_scenario[row.str("scenario")];
    line.scenario = row.str("scenario");
    if (kind == "fleet_run") {
      if (row.str("skipped") == "true") {
        ++line.skipped;
      } else {
        ++line.runs;
        line.violations += static_cast<long>(row.num("violations").value_or(0));
        line.wedged += static_cast<long>(row.num("wedged").value_or(0));
        line.unexpected_exits +=
            static_cast<long>(row.num("unexpected_exits").value_or(0));
      }
    } else if (row.str("match") != "true") {
      ++line.twin_mismatches;
    }
  }
  for (auto& [name, line] : by_scenario) r.fleet.push_back(line);
}

void aggregate_streams(TrendReport& r) {
  std::map<std::string, TrendReport::StreamLine> by_op;
  for (const TrendRow& row : r.rows) {
    if (row.str("kind") != "stream") continue;
    const std::string op = row.str("op");
    TrendReport::StreamLine& line = by_op[op];
    line.op = op;
    const double ms = row.num("ms_per_op").value_or(0);
    if (line.rows == 0 || ms < line.best_ms) line.best_ms = ms;
    if (line.rows == 0 || ms > line.worst_ms) line.worst_ms = ms;
    ++line.rows;
    if (row.num("finished").value_or(1) == 0) ++line.unfinished;
  }
  for (auto& [op, line] : by_op) r.streams.push_back(line);
}

void aggregate_scale(TrendReport& r) {
  // key: workload | nodes | loss | retransmit_backoff | pool_size |
  //      segments | engine | workers | epoch
  std::map<std::tuple<std::string, int, double, bool, int, int, std::string,
                      int, int>,
           ScaleTrend>
      pairs;
  for (const TrendRow& row : r.rows) {
    if (row.str("kind") != "scale") continue;
    const std::string workload = row.str("workload");
    const int nodes = static_cast<int>(row.num("nodes").value_or(0));
    const double loss = row.num("loss").value_or(0);
    const bool backoff = row.str("retransmit_backoff") == "true" ||
                         row.num("retransmit_backoff").value_or(0) != 0;
    const int pool = static_cast<int>(row.num("pool_size").value_or(0));
    const int segments = static_cast<int>(row.num("segments").value_or(1));
    // "exec_mode" (classic/windowed/concurrent) supersedes the old
    // "engine" column; fall back so historical rows still parse. Rows
    // older than both columns aggregate under "" — the same bucket as
    // explicit engine=serial via scale_label's empty suffix, but kept
    // distinct in the map key so a baseline regenerated with the column
    // never half-matches.
    std::string engine = row.str("exec_mode");
    if (engine.empty()) engine = row.str("engine");
    const int workers = static_cast<int>(row.num("workers").value_or(0));
    // Rows predating the epoch-2 hash break carry no hash_epoch column.
    const int epoch = static_cast<int>(row.num("hash_epoch").value_or(1));
    ScaleTrend& t =
        pairs[{workload, nodes, loss, backoff, pool, segments, engine,
               workers, epoch}];
    t.workload = workload;
    t.nodes = nodes;
    t.loss = loss;
    t.backoff = backoff;
    t.pool_size = pool;
    t.segments = segments;
    t.engine = engine;
    t.workers = workers;
    t.epoch = epoch;
    const bool opt = row.str("optimized") == "true" ||
                     row.num("optimized").value_or(0) != 0;
    const double events = row.num("events_executed").value_or(0);
    const double sched = row.num("events_scheduled").value_or(0);
    const double frames = row.num("frames_sent").value_or(0);
    const double ops = row.num("ops_done").value_or(0);
    if (opt) {
      t.opt_events = events;
      t.opt_scheduled = sched;
      t.opt_frames = frames;
      t.opt_ops = ops;
      t.opt_filtered = row.num("frames_filtered").value_or(0);
      t.opt_goodput = row.num("goodput_ops_s").value_or(0);
      t.opt_ops_min = row.num("ops_min").value_or(0);
      t.opt_ops_max = row.num("ops_max").value_or(0);
      t.opt_timedout = row.num("timedout").value_or(0);
      t.opt_shed = row.num("shed_offers").value_or(0);
      t.opt_ev_wall = row.num("events_per_wall_s").value_or(0);
      t.opt_rss_kb = row.num("peak_rss_kb").value_or(0);
      t.opt_relayed = row.num("frames_relayed").value_or(0);
    } else {
      t.base_events = events;
      t.base_scheduled = sched;
      t.base_frames = frames;
      t.base_ops = ops;
      t.base_goodput = row.num("goodput_ops_s").value_or(0);
      t.base_ops_min = row.num("ops_min").value_or(0);
      t.base_ops_max = row.num("ops_max").value_or(0);
      t.base_timedout = row.num("timedout").value_or(0);
      t.base_shed = row.num("shed_offers").value_or(0);
      t.base_ev_wall = row.num("events_per_wall_s").value_or(0);
    }
    t.ops_expected = row.num("ops_expected").value_or(t.ops_expected);
    t.violations += row.num("violations").value_or(0);
  }
  for (auto& [key, t] : pairs) r.scale.push_back(t);
}

std::string scale_label(const std::string& workload, bool backoff,
                        int pool_size, int segments = 1,
                        const std::string& engine = "", int workers = 0,
                        int epoch = 1) {
  std::string label = workload;
  if (backoff) label += "+bkoff";
  if (pool_size > 0) label += "+pool" + std::to_string(pool_size);
  if (segments > 1) label += "+seg" + std::to_string(segments);
  if (engine == "parallel" || engine == "concurrent") {
    label += "+par" + std::to_string(workers) + "w";
  } else if (engine == "windowed") {
    label += "+win";
  }
  // Epoch-2 rows hash under a different RNG contract; make that visible
  // so an e2 row is never eyeballed against an unmarked epoch-1 row.
  if (epoch > 1) label += "@e" + std::to_string(epoch);
  return label;
}

}  // namespace

TrendReport build_trend_report(const std::vector<std::string>& paths) {
  TrendReport r;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      r.files.push_back(path + "!");
      continue;
    }
    r.files.push_back(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      auto parsed = stats::parse_json_line(line);
      if (!parsed) continue;
      r.rows.push_back(TrendRow{path, std::move(*parsed)});
    }
  }
  aggregate_chaos(r);
  aggregate_streams(r);
  aggregate_scale(r);
  aggregate_fleet(r);
  return r;
}

std::string format_trend_report(const TrendReport& r) {
  std::ostringstream out;
  out << "Trend report (" << r.files.size() << " BENCH files, "
      << r.rows.size() << " rows)\n";
  for (const std::string& f : r.files) out << "  " << f << "\n";

  if (!r.streams.empty()) {
    out << "\nPaper streams (ms/op range per operation)\n";
    char buf[160];
    for (const auto& s : r.streams) {
      std::snprintf(buf, sizeof buf,
                    "  %-10s rows=%-4ld ms/op %.1f..%.1f%s\n", s.op.c_str(),
                    s.rows, s.best_ms, s.worst_ms,
                    s.unfinished ? "  [UNFINISHED RUNS]" : "");
      out << buf;
    }
  }

  if (!r.chaos.empty()) {
    out << "\nChaos sweeps\n";
    char buf[160];
    for (const auto& c : r.chaos) {
      std::snprintf(buf, sizeof buf,
                    "  %-22s runs=%-4ld seeds=%-6ld failures=%ld%s\n",
                    c.scenario.c_str(), c.runs, c.seeds_swept, c.failures,
                    c.failures ? "  [FAILING]" : "");
      out << buf;
    }
  }

  if (!r.fleet.empty()) {
    out << "\nFleet runs (real OS processes, doc/FLEET.md)\n";
    char buf[200];
    for (const auto& f : r.fleet) {
      const bool bad =
          f.violations || f.wedged || f.unexpected_exits || f.twin_mismatches;
      std::snprintf(buf, sizeof buf,
                    "  %-22s runs=%-3ld skipped=%-3ld violations=%ld "
                    "wedged=%ld unexpected=%ld twin_mismatch=%ld%s\n",
                    f.scenario.c_str(), f.runs, f.skipped, f.violations,
                    f.wedged, f.unexpected_exits, f.twin_mismatches,
                    bad ? "  [FAILING]" : "");
      out << buf;
    }
  }

  if (!r.scale.empty()) {
    out << "\nScaling matrix (base -> optimized, % = reduction)\n";
    char buf[200];
    std::snprintf(buf, sizeof buf, "  %-18s %5s %5s %22s %22s %10s %6s\n",
                  "workload", "nodes", "loss", "sched events", "frames",
                  "filtered", "viol");
    out << buf;
    for (const auto& t : r.scale) {
      const std::string label = scale_label(
          t.workload, t.backoff, t.pool_size, t.segments, t.engine,
          t.workers, t.epoch);
      std::snprintf(
          buf, sizeof buf,
          "  %-18s %5d %4.0f%% %9.0f->%-7.0f %2.0f%% %9.0f->%-7.0f %2.0f%% "
          "%10.0f %6.0f\n",
          label.c_str(), t.nodes, t.loss * 100, t.base_scheduled,
          t.opt_scheduled, ScaleTrend::win(t.base_scheduled, t.opt_scheduled),
          t.base_frames, t.opt_frames,
          ScaleTrend::win(t.base_frames, t.opt_frames), t.opt_filtered,
          t.violations);
      out << buf;
    }

    // Engine throughput: host-dependent, so reported but never compared
    // tightly. Only rows that carried the column (newer harness) print.
    bool any_ev_wall = false;
    for (const auto& t : r.scale) any_ev_wall |= t.opt_ev_wall > 0;
    if (any_ev_wall) {
      out << "\nEngine throughput (optimized rows; host-dependent)\n";
      std::snprintf(buf, sizeof buf, "  %-18s %5s %14s %12s\n", "workload",
                    "nodes", "events/wall-s", "peak RSS kB");
      out << buf;
      for (const auto& t : r.scale) {
        if (t.opt_ev_wall <= 0) continue;
        const std::string label = scale_label(
            t.workload, t.backoff, t.pool_size, t.segments, t.engine,
            t.workers, t.epoch);
        std::snprintf(buf, sizeof buf, "  %-18s %5d %14.0f %12.0f\n",
                      label.c_str(), t.nodes, t.opt_ev_wall, t.opt_rss_kb);
        out << buf;
      }
    }

    // Goodput/fairness columns only mean something for the contention
    // workload (per-client tallies); star_rpc et al. leave them zero.
    bool any_goodput = false;
    for (const auto& t : r.scale) {
      any_goodput |= t.base_ops_max > 0 || t.opt_ops_max > 0;
    }
    if (any_goodput) {
      out << "\nOverload goodput & fairness (base -> optimized)\n";
      std::snprintf(buf, sizeof buf, "  %-18s %5s %18s %13s %13s %12s\n",
                    "workload", "nodes", "goodput ops/s", "min/max base",
                    "min/max opt", "timedout");
      out << buf;
      for (const auto& t : r.scale) {
        if (t.base_ops_max <= 0 && t.opt_ops_max <= 0) continue;
        const std::string label = scale_label(
            t.workload, t.backoff, t.pool_size, t.segments, t.engine,
            t.workers, t.epoch);
        std::snprintf(buf, sizeof buf,
                      "  %-18s %5d %7.0f->%-8.0f %6.0f/%-6.0f %6.0f/%-6.0f "
                      "%4.0f->%-5.0f\n",
                      label.c_str(), t.nodes, t.base_goodput,
                      t.opt_goodput, t.base_ops_min, t.base_ops_max,
                      t.opt_ops_min, t.opt_ops_max, t.base_timedout,
                      t.opt_timedout);
        out << buf;
      }
    }
  }
  return out.str();
}

std::string format_trend_diff(const TrendReport& before,
                              const TrendReport& after) {
  std::ostringstream out;
  char buf[240];
  out << "Trend diff: " << before.files.size() << " BENCH files before, "
      << after.files.size() << " after\n";

  // Chaos: failure-count movement per scenario.
  {
    std::map<std::string, std::pair<long, long>> merged;  // name -> (b, a)
    for (const auto& c : before.chaos) merged[c.scenario].first = c.failures;
    for (const auto& c : after.chaos) merged[c.scenario].second = c.failures;
    if (!merged.empty()) {
      out << "\nChaos failures (before -> after)\n";
      for (const auto& [name, fa] : merged) {
        const bool only_before = std::none_of(
            after.chaos.begin(), after.chaos.end(),
            [&name](const auto& c) { return c.scenario == name; });
        const bool only_after = std::none_of(
            before.chaos.begin(), before.chaos.end(),
            [&name](const auto& c) { return c.scenario == name; });
        std::snprintf(buf, sizeof buf, "  %-22s %ld -> %ld%s\n", name.c_str(),
                      fa.first, fa.second,
                      only_before   ? "  [REMOVED]"
                      : only_after  ? "  [NEW]"
                      : fa.second > fa.first ? "  [WORSE]"
                      : fa.second < fa.first ? "  [better]"
                                             : "");
        out << buf;
      }
    }
  }

  // Paper streams: worst-case ms/op drift per operation.
  {
    std::map<std::string, std::pair<const TrendReport::StreamLine*,
                                    const TrendReport::StreamLine*>>
        merged;
    for (const auto& s : before.streams) merged[s.op].first = &s;
    for (const auto& s : after.streams) merged[s.op].second = &s;
    if (!merged.empty()) {
      out << "\nPaper streams, worst ms/op (before -> after)\n";
      for (const auto& [op, ba] : merged) {
        const double b = ba.first ? ba.first->worst_ms : 0;
        const double a = ba.second ? ba.second->worst_ms : 0;
        std::snprintf(buf, sizeof buf, "  %-10s %.1f -> %.1f%s\n", op.c_str(),
                      b, a,
                      !ba.first    ? "  [NEW]"
                      : !ba.second ? "  [REMOVED]"
                      : a > b * 1.05 ? "  [WORSE]"
                      : a < b * 0.95 ? "  [better]"
                                     : "");
        out << buf;
      }
    }
  }

  // Scale: goodput / completion / churn movement per config.
  {
    std::map<
        std::tuple<std::string, int, double, bool, int, int, std::string,
                   int, int>,
        std::pair<const ScaleTrend*, const ScaleTrend*>>
        merged;
    for (const auto& t : before.scale) {
      merged[{t.workload, t.nodes, t.loss, t.backoff, t.pool_size,
              t.segments, t.engine, t.workers, t.epoch}]
          .first = &t;
    }
    for (const auto& t : after.scale) {
      merged[{t.workload, t.nodes, t.loss, t.backoff, t.pool_size,
              t.segments, t.engine, t.workers, t.epoch}]
          .second = &t;
    }
    if (!merged.empty()) {
      out << "\nScaling matrix (optimized mode, before -> after)\n";
      std::snprintf(buf, sizeof buf, "  %-18s %5s %5s %20s %20s %18s %16s\n",
                    "workload", "nodes", "loss", "ops", "sched events",
                    "goodput ops/s", "events/wall-s");
      out << buf;
      for (const auto& [key, ba] : merged) {
        const auto& [workload, nodes, loss, backoff, pool, segments, engine,
                     workers, epoch] = key;
        const std::string label = scale_label(workload, backoff, pool,
                                              segments, engine, workers,
                                              epoch);
        if (!ba.first || !ba.second) {
          std::snprintf(buf, sizeof buf, "  %-18s %5d %4.0f%% %s\n",
                        label.c_str(), nodes, loss * 100,
                        ba.second ? "[NEW]" : "[REMOVED]");
          out << buf;
          continue;
        }
        const ScaleTrend& b = *ba.first;
        const ScaleTrend& a = *ba.second;
        const char* flag = "";
        if (a.opt_ops < b.opt_ops || a.violations > b.violations ||
            (b.opt_goodput > 0 && a.opt_goodput < b.opt_goodput * 0.95)) {
          flag = "  [WORSE]";
        }
        // Wall-clock throughput is host- and load-dependent, so the gate
        // only fires on a >3x collapse — a real engine regression, not a
        // noisy neighbour on the CI box — and only for rows big enough
        // (>=100k events) that the wall time isn't startup noise.
        if (flag[0] == '\0' && b.opt_events >= 100000 &&
            b.opt_ev_wall > 0 && a.opt_ev_wall > 0 &&
            a.opt_ev_wall * 3 < b.opt_ev_wall) {
          flag = "  [WORSE]";
        }
        std::snprintf(buf, sizeof buf,
                      "  %-18s %5d %4.0f%% %8.0f->%-8.0f %9.0f->%-9.0f "
                      "%7.0f->%-7.0f %7.0f->%-7.0f%s\n",
                      label.c_str(), nodes, loss * 100, b.opt_ops,
                      a.opt_ops, b.opt_scheduled, a.opt_scheduled,
                      b.opt_goodput, a.opt_goodput, b.opt_ev_wall,
                      a.opt_ev_wall, flag);
        out << buf;
      }
    }
  }
  return out.str();
}

}  // namespace soda::bench
