#include "benchsupport/trend.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "stats/json.h"

namespace soda::bench {

std::optional<double> TrendRow::num(const std::string& key) const {
  const std::string* v = get(key);
  if (!v) return std::nullopt;
  char* end = nullptr;
  const double d = std::strtod(v->c_str(), &end);
  if (end == v->c_str()) return std::nullopt;
  return d;
}

std::string TrendRow::str(const std::string& key) const {
  const std::string* v = get(key);
  return v ? *v : std::string();
}

std::vector<std::string> find_bench_files(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& e : std::filesystem::directory_iterator(dir, ec)) {
    if (!e.is_regular_file()) continue;
    const std::string name = e.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 &&
        name.size() > 6 + 6 &&  // "BENCH_" + ".jsonl"
        name.compare(name.size() - 6, 6, ".jsonl") == 0) {
      out.push_back(e.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

void aggregate_chaos(TrendReport& r) {
  std::map<std::string, TrendReport::ChaosLine> by_scenario;
  for (const TrendRow& row : r.rows) {
    const std::string kind = row.str("kind");
    if (kind != "chaos_run" && kind != "chaos_sweep") continue;
    TrendReport::ChaosLine& line = by_scenario[row.str("scenario")];
    line.scenario = row.str("scenario");
    if (kind == "chaos_run") {
      ++line.runs;
      if (row.num("ok").value_or(1) == 0) ++line.failures;
    } else {
      line.seeds_swept += static_cast<long>(row.num("ran").value_or(0));
      line.failures += static_cast<long>(row.num("failures").value_or(0));
    }
  }
  for (auto& [name, line] : by_scenario) r.chaos.push_back(line);
}

void aggregate_streams(TrendReport& r) {
  std::map<std::string, TrendReport::StreamLine> by_op;
  for (const TrendRow& row : r.rows) {
    if (row.str("kind") != "stream") continue;
    const std::string op = row.str("op");
    TrendReport::StreamLine& line = by_op[op];
    line.op = op;
    const double ms = row.num("ms_per_op").value_or(0);
    if (line.rows == 0 || ms < line.best_ms) line.best_ms = ms;
    if (line.rows == 0 || ms > line.worst_ms) line.worst_ms = ms;
    ++line.rows;
    if (row.num("finished").value_or(1) == 0) ++line.unfinished;
  }
  for (auto& [op, line] : by_op) r.streams.push_back(line);
}

void aggregate_scale(TrendReport& r) {
  // key: workload | nodes | loss
  std::map<std::tuple<std::string, int, double>, ScaleTrend> pairs;
  for (const TrendRow& row : r.rows) {
    if (row.str("kind") != "scale") continue;
    const std::string workload = row.str("workload");
    const int nodes = static_cast<int>(row.num("nodes").value_or(0));
    const double loss = row.num("loss").value_or(0);
    ScaleTrend& t = pairs[{workload, nodes, loss}];
    t.workload = workload;
    t.nodes = nodes;
    t.loss = loss;
    const bool opt = row.str("optimized") == "true" ||
                     row.num("optimized").value_or(0) != 0;
    const double events = row.num("events_executed").value_or(0);
    const double sched = row.num("events_scheduled").value_or(0);
    const double frames = row.num("frames_sent").value_or(0);
    const double ops = row.num("ops_done").value_or(0);
    if (opt) {
      t.opt_events = events;
      t.opt_scheduled = sched;
      t.opt_frames = frames;
      t.opt_ops = ops;
      t.opt_filtered = row.num("frames_filtered").value_or(0);
    } else {
      t.base_events = events;
      t.base_scheduled = sched;
      t.base_frames = frames;
      t.base_ops = ops;
    }
    t.ops_expected = row.num("ops_expected").value_or(t.ops_expected);
    t.violations += row.num("violations").value_or(0);
  }
  for (auto& [key, t] : pairs) r.scale.push_back(t);
}

}  // namespace

TrendReport build_trend_report(const std::vector<std::string>& paths) {
  TrendReport r;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      r.files.push_back(path + "!");
      continue;
    }
    r.files.push_back(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      auto parsed = stats::parse_json_line(line);
      if (!parsed) continue;
      r.rows.push_back(TrendRow{path, std::move(*parsed)});
    }
  }
  aggregate_chaos(r);
  aggregate_streams(r);
  aggregate_scale(r);
  return r;
}

std::string format_trend_report(const TrendReport& r) {
  std::ostringstream out;
  out << "Trend report (" << r.files.size() << " BENCH files, "
      << r.rows.size() << " rows)\n";
  for (const std::string& f : r.files) out << "  " << f << "\n";

  if (!r.streams.empty()) {
    out << "\nPaper streams (ms/op range per operation)\n";
    char buf[160];
    for (const auto& s : r.streams) {
      std::snprintf(buf, sizeof buf,
                    "  %-10s rows=%-4ld ms/op %.1f..%.1f%s\n", s.op.c_str(),
                    s.rows, s.best_ms, s.worst_ms,
                    s.unfinished ? "  [UNFINISHED RUNS]" : "");
      out << buf;
    }
  }

  if (!r.chaos.empty()) {
    out << "\nChaos sweeps\n";
    char buf[160];
    for (const auto& c : r.chaos) {
      std::snprintf(buf, sizeof buf,
                    "  %-22s runs=%-4ld seeds=%-6ld failures=%ld%s\n",
                    c.scenario.c_str(), c.runs, c.seeds_swept, c.failures,
                    c.failures ? "  [FAILING]" : "");
      out << buf;
    }
  }

  if (!r.scale.empty()) {
    out << "\nScaling matrix (base -> optimized, % = reduction)\n";
    char buf[200];
    std::snprintf(buf, sizeof buf, "  %-18s %5s %5s %22s %22s %10s %6s\n",
                  "workload", "nodes", "loss", "sched events", "frames",
                  "filtered", "viol");
    out << buf;
    for (const auto& t : r.scale) {
      std::snprintf(
          buf, sizeof buf,
          "  %-18s %5d %4.0f%% %9.0f->%-7.0f %2.0f%% %9.0f->%-7.0f %2.0f%% "
          "%10.0f %6.0f\n",
          t.workload.c_str(), t.nodes, t.loss * 100, t.base_scheduled,
          t.opt_scheduled, ScaleTrend::win(t.base_scheduled, t.opt_scheduled),
          t.base_frames, t.opt_frames,
          ScaleTrend::win(t.base_frames, t.opt_frames), t.opt_filtered,
          t.violations);
      out << buf;
    }
  }
  return out.str();
}

}  // namespace soda::bench
