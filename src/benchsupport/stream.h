// Measurement harness for the paper's evaluation (§5.5): drives a stream
// of SIGNAL / PUT / GET / EXCHANGE operations from one node at another
// whose handler ACCEPTs immediately (or whose task ACCEPTs from a queue,
// for the *MOD-comparison rows), and reports steady-state simulated
// milliseconds and packets per operation, plus the per-category cost
// ledger for the overhead-breakdown table.
#pragma once

#include <cstdint>
#include <string>

#include "proto/timing.h"

namespace soda::bench {

enum class OpKind : std::uint8_t { kSignal, kPut, kGet, kExchange };

const char* to_string(OpKind k);

struct StreamOptions {
  OpKind kind = OpKind::kPut;
  std::uint32_t words = 0;      // 16-bit PDP-11 words per transfer direction
  bool pipelined = false;       // both kernels pipelined (§5.2.3)
  int ops = 80;                 // total operations
  int warmup = 20;              // excluded from the measurement
  int max_requests = 3;         // MAXREQUESTS (the paper measures with 3)
  bool queued_accept = false;   // server queues in handler, ACCEPTs in task
  bool blocking = false;        // requester uses the blocking B_* form
  std::uint64_t seed = 1;
  double loss = 0.0;            // bus frame-loss probability
  TimingModel timing{};         // per-run timing overrides (ablations)
};

struct StreamResult {
  double ms_per_op = 0.0;
  double packets_per_op = 0.0;
  double bytes_per_op = 0.0;
  int completed = 0;
  bool finished = false;
  // Aggregate CPU charges (both nodes) per measured operation, in ms,
  // indexed by CostCategory.
  double cost_ms[static_cast<int>(CostCategory::kCount)] = {};
  double wire_ms_per_op = 0.0;  // serialization time on the bus
  // Whole-run protocol counters from the metrics registry (not windowed
  // to the post-warmup span) and the full per-node metrics dump as JSONL
  // rows, ready to append to a bench report.
  std::uint64_t retransmits = 0;
  std::uint64_t busy_nacks = 0;
  std::string metrics_jsonl;
};

/// Run one streaming experiment to completion and report.
StreamResult run_stream(const StreamOptions& options);

}  // namespace soda::bench
