// Gateway node bridging net::Bus segments (doc/INTERNET.md).
//
// The paper's SODA network is one broadcast bus; every O(N) wall measured
// in PR 3-PR 6 traces back to that shared medium. A Gateway stitches
// several buses into an internetwork the way a transparent LAN bridge
// does: it listens promiscuously on every attached segment (broadcasts
// through an ordinary station attachment, unicasts to absent MIDs through
// the bus relay tap), learns which segment each source MID lives behind
// from the frames it sees, and store-and-forwards copies onto the other
// segments through a bounded per-segment egress queue drained at the
// egress link's serialization rate.
//
// Loop policy: a relayed frame carries a hop count (Frame::hops, stamped
// on every traversal) and the MID of the last relay (Frame::relay_src).
// A gateway never forwards a frame back onto the segment it arrived on,
// drops its own echoes (relay_src == mid()), and drops anything that has
// already travelled `ttl` hops — so redundant bridges and physical rings
// produce bounded transients, not broadcast storms. Duplicate copies that
// do arrive over parallel paths are rejected by the protocol's
// alternating-bit machinery exactly like bus-duplicated frames.
//
// The pattern-route table is learned from DISCOVER replies crossing the
// gateway (the reply's pattern names a server on the reply's source side),
// giving `soda_shell routes` and the anycast hop bias a directory of which
// patterns live how many hops away.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "net/bus.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace soda::inet {

struct GatewayConfig {
  /// Maximum store-and-forward traversals before a frame is discarded.
  /// 4 crosses any topology we build (star, chain-of-3, ring) with slack.
  std::uint8_t ttl = 4;
  /// Bounded egress queue per attached segment; overflow drops the frame
  /// (and traces kRelay/kQueueOverflow — routers shed, they don't block).
  std::size_t egress_queue_limit = 64;
  /// Store-and-forward processing time per relayed frame (lookup + copy
  /// between NICs), charged before egress serialization.
  sim::Duration relay_latency = 20;  // us

  /// Companion to TimingModel::fast() / BusConfig::fast(). Two knobs move:
  ///
  /// - relay_latency 20 -> 1 us. The fast bus is an infinite-capacity
  ///   medium (us_per_byte = 0), so a 20 us/frame relay hold would make
  ///   the gateway the only finite-rate element: at a thousand stations
  ///   the hub saturates, queueing delay blows through the preset's
  ///   200 us retransmit interval and its 1.5 ms probe-miss crash window,
  ///   and every queued frame gets retransmitted into the queue again
  ///   (the bufferbloat spiral — measured, not imagined: a 2 us hold put
  ///   the port at ~90% utilization at 1024 nodes and DOUBLED offered
  ///   load through duplicates). 1 us keeps per-port service rate above
  ///   the fleet's worst-case demand.
  /// - egress_queue_limit 64 -> 1024. A thousand-station segment lands
  ///   hundreds of synchronized first-round REQUESTs on the hub in one
  ///   propagation slot, and their ~40 us retransmit jitter never
  ///   decorrelates 200-frame waves arriving every 200 us — a shallow
  ///   queue sheds part of every wave until retry budgets burn out. A
  ///   deep queue is only safe because the queue coalesces (see Port):
  ///   backlog is bounded by *distinct* in-flight frames, so worst-case
  ///   drain stays around the fleet size x 1 us — inside the 1.5 ms
  ///   probe-miss crash window (the Delta-t-across-hops caveat,
  ///   doc/INTERNET.md).
  static GatewayConfig fast() {
    GatewayConfig c;
    c.relay_latency = 1;
    c.egress_queue_limit = 1024;
    return c;
  }
};

/// One learned route: reach `mid` via `segment`, `hops` relays beyond it.
struct MidRoute {
  net::Mid mid = net::kBroadcastMid;
  int segment = -1;
  std::uint8_t hops = 0;
};

/// One learned pattern route (from DISCOVER replies): servers advertising
/// `pattern` live via `segment`, `hops` relays beyond it.
struct PatternRoute {
  net::Pattern pattern = 0;
  int segment = -1;
  std::uint8_t hops = 0;
};

/// Deterministic relay predicate (the chaos engine's inter-segment
/// partition lever): return true to drop a frame about to be relayed from
/// `from_segment` to `to_segment`. Directional — install windows for both
/// directions to cut a link symmetrically.
using ForwardFilter =
    std::function<bool(const net::Frame&, int from_segment, int to_segment)>;

class Gateway {
 public:
  Gateway(sim::Simulator& sim, net::Mid mid, GatewayConfig config = {});
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Attach this gateway to a segment. `segment_id` is the id the bus was
  /// given via Bus::set_segment (used in route dumps and trace details).
  /// Call once per segment, before the simulation runs.
  void attach_segment(int segment_id, net::Bus& bus);

  /// Hard failure: detach from every segment, dropping queued frames and
  /// all learned routes (a rebooted bridge re-learns from live traffic).
  void crash();

  /// Power the gateway back on: re-attach every port with empty tables.
  void reboot();

  bool alive() const { return alive_; }
  net::Mid mid() const { return mid_; }

  /// Segment ids this gateway bridges, in attach order.
  std::vector<int> segment_ids() const;

  /// Egress queue depth per attached segment, in attach order.
  std::vector<std::size_t> queue_depths() const;

  /// Learned MID routes, sorted by MID (deterministic dump order).
  std::vector<MidRoute> mid_routes() const;

  /// Learned pattern routes, sorted by pattern.
  std::vector<PatternRoute> pattern_routes() const;

  // --- counters ---
  std::size_t forwarded() const { return forwarded_; }
  std::size_t ttl_drops() const { return ttl_drops_; }
  std::size_t overflow_drops() const { return overflow_drops_; }
  std::size_t no_route_drops() const { return no_route_drops_; }
  std::size_t self_echoes() const { return self_echoes_; }
  std::size_t filtered_drops() const { return filtered_drops_; }
  std::size_t coalesced() const { return coalesced_; }
  /// Unknown-MID unicasts steered by a learned pattern route instead of
  /// being flooded to every other segment (doc/INTERNET.md §2).
  std::size_t pattern_forwards() const { return pattern_forwards_; }

  /// Install (or clear, with nullptr) a deterministic relay predicate.
  /// Survives crash/reboot — it models the links, not the gateway.
  void set_forward_filter(ForwardFilter filter) {
    forward_filter_ = std::move(filter);
  }

  const GatewayConfig& config() const { return config_; }

 private:
  struct Route {
    int segment = -1;
    std::uint8_t hops = 0;
  };

  struct Port {
    int segment_id = -1;
    net::Bus* bus = nullptr;
    std::deque<net::FrameRef> queue;   // egress frames, already restamped
    std::deque<std::uint64_t> keys;    // wire-image hash per queued frame
    /// Occurrence count per wire-image hash of the frames currently
    /// queued: the egress queue *coalesces* — a Delta-t retransmit of a
    /// frame that is still waiting in this queue is byte-identical and
    /// adds no information, so it is dropped on arrival instead of
    /// doubling the backlog (the saturation spiral: queueing delay past
    /// the sender's retransmit interval turns every queued frame into
    /// two). Once the copy leaves the queue, later retransmits relay
    /// normally, so loss downstream is still repaired end to end.
    std::unordered_map<std::uint64_t, std::uint32_t> queued_count;
    bool busy = false;                 // a drain hold is in flight
  };

  void attach_port(Port& port, std::size_t port_idx);
  void on_frame(std::size_t port_idx, const net::FrameRef& f);
  void learn(std::size_t port_idx, const net::Frame& f);
  void relay(std::size_t from_idx, std::size_t target_idx,
             const net::Frame& f);
  void enqueue(std::size_t target_idx, const net::Frame& f);
  void pump(std::size_t target_idx);
  void trace_relay(const net::Frame& f, sim::TraceStatus status,
                   int segment_detail);

  sim::Simulator& sim_;
  net::Mid mid_;
  GatewayConfig config_;
  std::vector<Port> ports_;
  std::unordered_map<net::Mid, Route> mid_routes_;
  std::unordered_map<net::Pattern, Route> pattern_routes_;
  ForwardFilter forward_filter_;
  bool alive_ = true;
  std::uint64_t gen_ = 0;  // bumped on crash: invalidates in-flight holds
  std::size_t forwarded_ = 0;
  std::size_t ttl_drops_ = 0;
  std::size_t overflow_drops_ = 0;
  std::size_t no_route_drops_ = 0;
  std::size_t self_echoes_ = 0;
  std::size_t filtered_drops_ = 0;
  std::size_t coalesced_ = 0;
  std::size_t pattern_forwards_ = 0;
};

}  // namespace soda::inet
