// Assembly of a multi-segment SODA internetwork: one simulator driving
// several net::Bus segments stitched together by inet::Gateway bridges.
//
// The single event queue is what keeps multi-segment runs bit-
// deterministic: every segment's deliveries and every gateway's drain
// holds are ordered by the one (time, seq) heap, so a run is still a pure
// function of (topology, seed) exactly as with core::Network. Nodes and
// gateways draw MIDs from one global counter in creation order, so MIDs
// remain unique across the whole internet (Delta-t's requester signature
// needs that, §3.3.1).
//
// With segments == 1 and no gateways this is core::Network with one
// indirection — but single-segment callers with pinned trace hashes keep
// using Network: Internet stamps segment ids into packet traces
// (Bus::set_segment), which changes hash-folded detail fields.
#pragma once

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/node.h"
#include "inet/gateway.h"
#include "net/bus.h"
#include "sim/simulator.h"

namespace soda::inet {

struct InternetOptions {
  std::uint64_t seed = 1;
  int segments = 1;
  /// Default medium for every segment...
  net::BusConfig bus{};
  /// ...overridden per segment when an entry exists here (heterogeneous
  /// link speeds stress Delta-t across hops; see doc/INTERNET.md).
  std::vector<net::BusConfig> segment_bus{};
  GatewayConfig gateway{};
};

class Internet {
 public:
  using Options = InternetOptions;

  explicit Internet(Options options = {})
      : options_(std::move(options)), sim_(options_.seed) {
    const int n = options_.segments < 1 ? 1 : options_.segments;
    buses_.reserve(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      const net::BusConfig bc =
          static_cast<std::size_t>(s) < options_.segment_bus.size()
              ? options_.segment_bus[static_cast<std::size_t>(s)]
              : options_.bus;
      buses_.push_back(std::make_unique<net::Bus>(sim_, bc));
      buses_.back()->set_segment(s);
    }
  }

  /// Append one more (empty) segment and return its id. Interactive
  /// assembly (soda_shell) grows topologies this way; gateways added with
  /// an empty segment list earlier do NOT auto-attach to later segments.
  int add_segment() {
    const int id = static_cast<int>(buses_.size());
    buses_.push_back(std::make_unique<net::Bus>(sim_, options_.bus));
    buses_.back()->set_segment(id);
    return id;
  }

  /// Add a node attached to `segment`. MIDs are assigned 0, 1, 2, ... in
  /// creation order across nodes AND gateways, so create the manager (MID
  /// 0, §3.5.4) first.
  Node& add_node(int segment, NodeConfig config = {}) {
    auto& bus = *buses_.at(static_cast<std::size_t>(segment));
    const Mid mid = next_mid_++;
    // Segment-keyed wheel affinity when the simulator is partitioned (a
    // no-op guard otherwise). Gateways stay on wheel 0; every
    // cross-partition edge is then a bus delivery or a gateway hold,
    // both bounded below by lookahead().
    sim::ScopedPartition guard(sim_, segment % sim_.partition_count());
    // Pre-size the per-serial pattern sequences here (setup time) so
    // runtime get_unique_id calls never grow the table concurrently.
    uids_.reserve_serials(static_cast<std::size_t>(mid) + 1);
    nodes_.push_back(
        std::make_unique<Node>(sim_, bus, mid, std::move(config), uids_));
    node_index_[mid] = nodes_.size() - 1;
    node_segment_[mid] = segment;
    return *nodes_.back();
  }

  /// Create a node on `segment` and install a client of type T on it.
  template <typename T, typename... Args>
  T& spawn(int segment, NodeConfig config, Args&&... args) {
    Node& n = add_node(segment, std::move(config));
    auto client = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *client;
    n.install_client(std::move(client), n.mid());
    return ref;
  }

  /// Add a gateway bridging the given segment ids — all segments when the
  /// list is empty (the hub of a star topology). Draws its MID from the
  /// same counter as nodes.
  Gateway& add_gateway(std::vector<int> segments = {}) {
    const Mid mid = next_mid_++;
    gateways_.push_back(
        std::make_unique<Gateway>(sim_, mid, options_.gateway));
    Gateway& g = *gateways_.back();
    if (segments.empty()) {
      for (std::size_t s = 0; s < buses_.size(); ++s) {
        g.attach_segment(static_cast<int>(s), *buses_[s]);
      }
    } else {
      for (int s : segments) {
        g.attach_segment(s, *buses_.at(static_cast<std::size_t>(s)));
      }
    }
    return g;
  }

  bool has_node(Mid mid) const { return node_index_.count(mid) > 0; }

  Node& node(Mid mid) {
    auto it = node_index_.find(mid);
    if (it == node_index_.end()) throw std::out_of_range("no such node");
    return *nodes_[it->second];
  }

  /// Segment a node was created on; -1 for gateways / unknown MIDs.
  int segment_of(Mid mid) const {
    auto it = node_segment_.find(mid);
    return it == node_segment_.end() ? -1 : it->second;
  }

  std::size_t size() const { return nodes_.size(); }
  int segments() const { return static_cast<int>(buses_.size()); }

  sim::Simulator& sim() { return sim_; }

  /// Conservative lookahead window this topology guarantees: an event on
  /// one segment cannot cause an event on another sooner than the minimum
  /// of every segment's propagation delay and the gateways' hold time
  /// (doc/PERFORMANCE.md §parallel). Feed to Simulator::set_lookahead.
  sim::Duration lookahead() const {
    sim::Duration la = std::numeric_limits<sim::Duration>::max();
    for (const auto& b : buses_) la = std::min(la, b->config().propagation);
    if (!gateways_.empty()) la = std::min(la, options_.gateway.relay_latency);
    return la == std::numeric_limits<sim::Duration>::max() ? 0 : la;
  }

  net::Bus& bus(int segment = 0) {
    return *buses_.at(static_cast<std::size_t>(segment));
  }
  UniqueIdSource& uids() { return uids_; }
  std::vector<std::unique_ptr<Gateway>>& gateways() { return gateways_; }

  void run_for(sim::Duration d) { sim_.run_until(sim_.now() + d); }

  /// Propagate the first exception any client program hit.
  void check_clients() {
    for (auto& n : nodes_) {
      if (n->client()) n->client()->rethrow_error();
    }
  }

 private:
  Options options_;
  sim::Simulator sim_;
  std::vector<std::unique_ptr<net::Bus>> buses_;
  UniqueIdSource uids_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<Mid, std::size_t> node_index_;
  std::unordered_map<Mid, int> node_segment_;
  std::vector<std::unique_ptr<Gateway>> gateways_;
  Mid next_mid_ = 0;
};

}  // namespace soda::inet
