#include "inet/gateway.h"

#include <algorithm>

#include "net/wire.h"

namespace soda::inet {

Gateway::Gateway(sim::Simulator& sim, net::Mid mid, GatewayConfig config)
    : sim_(sim), mid_(mid), config_(config) {}

Gateway::~Gateway() {
  if (alive_) crash();
}

void Gateway::attach_segment(int segment_id, net::Bus& bus) {
  Port port;
  port.segment_id = segment_id;
  port.bus = &bus;
  ports_.push_back(std::move(port));
  if (alive_) attach_port(ports_.back(), ports_.size() - 1);
}

void Gateway::attach_port(Port& port, std::size_t port_idx) {
  // Two ears per segment: a station attachment hears broadcasts (the bus
  // delivers those to every station), the relay tap hears unicast frames
  // whose destination has no station on this segment — i.e. exactly the
  // cross-segment traffic.
  port.bus->attach_ref(mid_, [this, port_idx](const net::FrameRef& f) {
    on_frame(port_idx, f);
  });
  port.bus->add_relay_tap(mid_, [this, port_idx](const net::FrameRef& f) {
    on_frame(port_idx, f);
  });
}

void Gateway::crash() {
  alive_ = false;
  ++gen_;  // invalidates every in-flight drain hold
  for (auto& port : ports_) {
    port.bus->detach(mid_);
    port.bus->remove_relay_tap(mid_);
    port.queue.clear();
    port.keys.clear();
    port.queued_count.clear();
    port.busy = false;
  }
  mid_routes_.clear();
  pattern_routes_.clear();
  sim_.trace().record(
      sim_.now(), sim::TraceCategory::kBoot, mid_,
      sim::TracePayload{}.with_status(sim::TraceStatus::kKilled));
}

void Gateway::reboot() {
  if (alive_) return;
  alive_ = true;
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    attach_port(ports_[i], i);
  }
  sim_.trace().record(
      sim_.now(), sim::TraceCategory::kBoot, mid_,
      sim::TracePayload{}.with_status(sim::TraceStatus::kBooting));
}

std::vector<int> Gateway::segment_ids() const {
  std::vector<int> out;
  out.reserve(ports_.size());
  for (const auto& p : ports_) out.push_back(p.segment_id);
  return out;
}

std::vector<std::size_t> Gateway::queue_depths() const {
  std::vector<std::size_t> out;
  out.reserve(ports_.size());
  for (const auto& p : ports_) out.push_back(p.queue.size());
  return out;
}

std::vector<MidRoute> Gateway::mid_routes() const {
  std::vector<MidRoute> out;
  out.reserve(mid_routes_.size());
  for (const auto& [mid, r] : mid_routes_) {
    out.push_back(MidRoute{mid, r.segment, r.hops});
  }
  std::sort(out.begin(), out.end(),
            [](const MidRoute& a, const MidRoute& b) { return a.mid < b.mid; });
  return out;
}

std::vector<PatternRoute> Gateway::pattern_routes() const {
  std::vector<PatternRoute> out;
  out.reserve(pattern_routes_.size());
  for (const auto& [pattern, r] : pattern_routes_) {
    out.push_back(PatternRoute{pattern, r.segment, r.hops});
  }
  std::sort(out.begin(), out.end(),
            [](const PatternRoute& a, const PatternRoute& b) {
              return a.pattern < b.pattern;
            });
  return out;
}

void Gateway::trace_relay(const net::Frame& f, sim::TraceStatus status,
                          int segment_detail) {
  sim_.trace().record(
      sim_.now(), sim::TraceCategory::kRelay, mid_,
      net::trace_payload(f).with_status(status).with_detail(segment_detail));
}

void Gateway::learn(std::size_t port_idx, const net::Frame& f) {
  const int seg = ports_[port_idx].segment_id;
  // Transparent-bridge source learning: seeing src on this segment at
  // `hops` relays means src is reachable through it. Prefer shorter paths;
  // refresh in place when the same segment reports a new distance.
  const Route cand{seg, f.hops};
  auto it = mid_routes_.find(f.src);
  if (it == mid_routes_.end() || cand.hops < it->second.hops ||
      it->second.segment == seg) {
    mid_routes_[f.src] = cand;
  }
  if (f.discover && f.discover->is_reply) {
    const net::Pattern p = f.discover->pattern & net::kPatternMask;
    auto pit = pattern_routes_.find(p);
    if (pit == pattern_routes_.end() || cand.hops < pit->second.hops ||
        pit->second.segment == seg) {
      pattern_routes_[p] = cand;
    }
  }
}

void Gateway::on_frame(std::size_t port_idx, const net::FrameRef& f) {
  if (!alive_) return;
  const net::Frame& frame = *f;
  if (frame.relay_src == mid_) {
    // Our own relay echoing back (we re-broadcast onto a segment we also
    // listen on). Not traffic, and must not teach routes.
    ++self_echoes_;
    return;
  }
  learn(port_idx, frame);
  const int arrival_seg = ports_[port_idx].segment_id;
  if (frame.hops >= config_.ttl) {
    ++ttl_drops_;
    trace_relay(frame, sim::TraceStatus::kTtlExpired, arrival_seg);
    return;
  }

  if (frame.dst == net::kBroadcastMid) {
    // Broadcast: flood every other segment (DISCOVER across the internet).
    for (std::size_t i = 0; i < ports_.size(); ++i) {
      if (i == port_idx) continue;
      relay(port_idx, i, frame);
    }
    return;
  }

  // Unicast: route if we know where dst lives, flood if we don't. Never
  // back onto the arrival segment — if dst is (believed) local there, the
  // frame only reached us because the station is gone; relaying it
  // elsewhere would be noise.
  auto it = mid_routes_.find(frame.dst);
  if (it != mid_routes_.end()) {
    if (it->second.segment == arrival_seg) {
      ++no_route_drops_;
      trace_relay(frame, sim::TraceStatus::kNoRoute, arrival_seg);
      return;
    }
    for (std::size_t i = 0; i < ports_.size(); ++i) {
      if (ports_[i].segment_id == it->second.segment) {
        relay(port_idx, i, frame);
        return;
      }
    }
  }
  // Unknown destination MID. Before flooding, consult the learned pattern
  // routes: a REQUEST names the pattern it wants served, and DISCOVER
  // replies crossing this gateway taught us which side that pattern's
  // servers live on. On chains of 3+ segments this turns O(segments)
  // flood copies into one directed relay per hop. A stale hint is safe
  // the same way a stale MID route is: the copy dies downstream and the
  // requester's retransmit (eventually crash detection) repairs end to
  // end. A hint pointing back at the arrival segment is ignored — flood
  // conservatively rather than drop.
  if (frame.request) {
    const net::Pattern p = frame.request->pattern & net::kPatternMask;
    auto pit = pattern_routes_.find(p);
    if (pit != pattern_routes_.end() && pit->second.segment != arrival_seg) {
      for (std::size_t i = 0; i < ports_.size(); ++i) {
        if (ports_[i].segment_id == pit->second.segment) {
          ++pattern_forwards_;
          relay(port_idx, i, frame);
          return;
        }
      }
    }
  }
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (i == port_idx) continue;
    relay(port_idx, i, frame);
  }
}

void Gateway::relay(std::size_t from_idx, std::size_t target_idx,
                    const net::Frame& f) {
  if (forward_filter_ &&
      forward_filter_(f, ports_[from_idx].segment_id,
                      ports_[target_idx].segment_id)) {
    ++filtered_drops_;  // an injected inter-segment partition ate it
    return;
  }
  enqueue(target_idx, f);
}

void Gateway::enqueue(std::size_t target_idx, const net::Frame& f) {
  Port& port = ports_[target_idx];
  net::Frame copy = f;
  copy.hops = static_cast<std::uint8_t>(f.hops + 1);
  copy.relay_src = mid_;
  // Coalesce: hash the exact wire image (what encode_frame would emit) so
  // a retransmit of a frame still waiting in this queue — byte-identical
  // by Delta-t's definition of a retransmission — is recognized and not
  // queued twice.
  const auto bytes = net::encode_frame(copy);
  std::uint64_t key = 1469598103934665603ull;
  for (std::uint8_t b : bytes) {
    key ^= b;
    key *= 1099511628211ull;
  }
  auto count = port.queued_count.find(key);
  if (count != port.queued_count.end() && count->second > 0) {
    ++coalesced_;
    return;
  }
  if (port.queue.size() >= config_.egress_queue_limit) {
    ++overflow_drops_;
    trace_relay(f, sim::TraceStatus::kQueueOverflow, port.segment_id);
    return;
  }
  port.queue.push_back(port.bus->pool().make(std::move(copy)));
  port.keys.push_back(key);
  ++port.queued_count[key];
  pump(target_idx);
}

void Gateway::pump(std::size_t target_idx) {
  Port& port = ports_[target_idx];
  if (port.busy || port.queue.empty()) return;
  port.busy = true;
  net::FrameRef f = std::move(port.queue.front());
  port.queue.pop_front();
  const std::uint64_t key = port.keys.front();
  port.keys.pop_front();
  auto count = port.queued_count.find(key);
  if (count != port.queued_count.end() && --count->second == 0) {
    port.queued_count.erase(count);
  }
  // Store-and-forward: processing plus serialization onto the egress link
  // occupy this port before the next queued frame can go out. The bus adds
  // its own propagation + wire time on delivery, as for any sender.
  const sim::Duration hold =
      config_.relay_latency +
      static_cast<sim::Duration>(f->wire_size()) * port.bus->config().us_per_byte;
  const std::uint64_t gen = gen_;
  sim_.after(hold, [this, target_idx, gen, f = std::move(f)]() {
    if (gen != gen_) return;  // gateway crashed while the frame was held
    Port& p = ports_[target_idx];
    p.busy = false;
    ++forwarded_;
    trace_relay(*f, sim::TraceStatus::kForwarded, p.segment_id);
    p.bus->send_ref(f);
    pump(target_idx);
  });
}

}  // namespace soda::inet
