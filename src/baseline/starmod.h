// A *MOD-style port runtime (the paper's comparison baseline, §5.5).
//
// LeBlanc implemented *MOD message passing on the same PDP-11/Megalink
// hardware; the paper reports 20.7 ms for a synchronous remote port call
// and 11.1 ms for an asynchronous one — roughly 2x SODA's equivalent
// operations. The *MOD runtime is slower because it is layered: a
// datagram layer, a reliable-transport layer with explicit (never
// piggybacked) ACKs, and a typed-port layer with kernel-side buffering
// plus a language-level scheduler hop that dispatches each delivery.
//
// This baseline reproduces that structure over the same simulated bus:
// every message crosses three layers on each side (each charging CPU and
// a buffer copy), every message is ACKed by a dedicated packet, the ACK
// is only generated after the port layer has buffered the message, and
// delivery goes through a scheduler hop before the receiving process
// runs. Per-layer costs are calibrated to LeBlanc's published endpoints
// the same way the SODA TimingModel is calibrated to the SODA breakdown
// table (see DESIGN.md).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "net/bus.h"
#include "proto/timing.h"
#include "sim/coro.h"
#include "sim/simulator.h"

namespace soda::baseline {

struct StarModCosts {
  sim::Duration datagram_layer = 900;   // per packet, per side
  sim::Duration transport_layer = 1450; // reliable layer, per message/side
  sim::Duration port_layer = 1850;      // typed-port machinery, per side
  sim::Duration scheduler = 1550;       // language-runtime dispatch hop
  sim::Duration copy_per_byte = 6;      // one copy per layer boundary
  int copies_per_side = 2;              // layer boundaries that copy
  sim::Duration retransmit_interval = 30'000;
  int max_retries = 8;
};

class StarModNode {
 public:
  using SyncHandler = std::function<std::vector<std::byte>(
      const std::vector<std::byte>&)>;
  using AsyncHandler = std::function<void(const std::vector<std::byte>&)>;
  using Bytes = std::vector<std::byte>;

  StarModNode(sim::Simulator& sim, net::Bus& bus, net::Mid mid,
              StarModCosts costs = {})
      : sim_(sim), bus_(bus), mid_(mid), costs_(costs), cpu_(sim, ledger_) {
    bus_.attach(mid_, [this](const net::Frame& f) { on_frame(f); });
  }
  ~StarModNode() { bus_.detach(mid_); }

  StarModNode(const StarModNode&) = delete;
  StarModNode& operator=(const StarModNode&) = delete;

  void bind_sync_port(int port, SyncHandler fn) {
    sync_ports_[port] = std::move(fn);
  }
  void bind_async_port(int port, AsyncHandler fn) {
    async_ports_[port] = std::move(fn);
  }

  /// Synchronous remote port call: resolves with the reply bytes (empty
  /// on failure after retries).
  sim::Future<Bytes> sync_call(net::Mid peer, int port, Bytes args) {
    sim::Promise<Bytes> pr;
    const std::uint64_t id = next_id_++;
    sync_waiting_[id] = pr;
    send_message(peer, Msg{MsgType::kSyncCall, port, id, std::move(args)});
    return pr.future();
  }

  /// Asynchronous port call: resolves when the transport layer has the
  /// message safely at the far side (the sender's buffer is free).
  sim::Future<sim::Unit> async_call(net::Mid peer, int port, Bytes msg) {
    sim::Promise<sim::Unit> pr;
    const std::uint64_t id = next_id_++;
    async_waiting_[id] = pr;
    send_message(peer, Msg{MsgType::kAsyncCall, port, id, std::move(msg)});
    return pr.future();
  }

  CostLedger& ledger() { return ledger_; }
  std::size_t dispatched() const { return dispatched_; }

 private:
  enum class MsgType : std::uint8_t {
    kSyncCall = 1,
    kAsyncCall = 2,
    kReply = 3,
    kAck = 4,
  };

  struct Msg {
    MsgType type;
    int port = 0;
    std::uint64_t id = 0;
    Bytes payload;
  };

  // --- framing: the baseline owns its wire format inside Frame::data ---
  static net::Frame encode(net::Mid src, net::Mid dst, const Msg& m) {
    net::Frame f;
    f.src = src;
    f.dst = dst;
    f.data.resize(13 + m.payload.size());
    f.data[0] = static_cast<std::byte>(m.type);
    for (int i = 0; i < 4; ++i) {
      f.data[static_cast<std::size_t>(1 + i)] = static_cast<std::byte>(
          (static_cast<std::uint32_t>(m.port) >> (8 * i)) & 0xFF);
    }
    for (int i = 0; i < 8; ++i) {
      f.data[static_cast<std::size_t>(5 + i)] =
          static_cast<std::byte>((m.id >> (8 * i)) & 0xFF);
    }
    std::copy(m.payload.begin(), m.payload.end(), f.data.begin() + 13);
    return f;
  }

  static Msg decode(const net::Frame& f) {
    Msg m;
    m.type = static_cast<MsgType>(std::to_integer<std::uint8_t>(f.data[0]));
    std::uint32_t port = 0;
    for (int i = 0; i < 4; ++i) {
      port |= std::to_integer<std::uint32_t>(
                  f.data[static_cast<std::size_t>(1 + i)])
              << (8 * i);
    }
    m.port = static_cast<int>(port);
    for (int i = 0; i < 8; ++i) {
      m.id |= std::to_integer<std::uint64_t>(
                  f.data[static_cast<std::size_t>(5 + i)])
              << (8 * i);
    }
    m.payload.assign(f.data.begin() + 13, f.data.end());
    return m;
  }

  void charge_send_side(std::size_t bytes) {
    cpu_.charge(costs_.datagram_layer, CostCategory::kProtocol);
    cpu_.charge(costs_.transport_layer, CostCategory::kRetransmitTimers);
    cpu_.charge(costs_.port_layer, CostCategory::kClientOverhead);
    cpu_.charge(static_cast<sim::Duration>(bytes) * costs_.copy_per_byte *
                    costs_.copies_per_side,
                CostCategory::kDataCopy);
  }

  void send_message(net::Mid peer, Msg m) {
    const std::uint64_t id = m.id;
    charge_send_side(m.payload.size());
    net::Frame f = encode(mid_, peer, m);
    Outstanding o;
    o.peer = peer;
    o.frame = f;
    o.retries = 0;
    outstanding_[id] = std::move(o);
    cpu_.run(0, CostCategory::kProtocol, [this, f]() { bus_.send(f); });
    arm_retransmit(id);
  }

  void arm_retransmit(std::uint64_t id) {
    sim_.after(costs_.retransmit_interval, [this, id]() {
      auto it = outstanding_.find(id);
      if (it == outstanding_.end()) return;
      if (++it->second.retries > costs_.max_retries) {
        fail(id);
        return;
      }
      bus_.send(it->second.frame);
      arm_retransmit(id);
    });
  }

  void fail(std::uint64_t id) {
    outstanding_.erase(id);
    if (auto it = sync_waiting_.find(id); it != sync_waiting_.end()) {
      auto pr = it->second;
      sync_waiting_.erase(it);
      pr.set(Bytes{});
    }
    if (auto it = async_waiting_.find(id); it != async_waiting_.end()) {
      auto pr = it->second;
      async_waiting_.erase(it);
      pr.set(sim::Unit{});
    }
  }

  void on_frame(const net::Frame& f) {
    if (f.data.size() < 13) return;
    Msg m = decode(f);
    // datagram layer receive cost
    cpu_.charge(costs_.datagram_layer, CostCategory::kProtocol);

    if (m.type == MsgType::kAck) {
      cpu_.charge(costs_.transport_layer, CostCategory::kRetransmitTimers);
      auto it = outstanding_.find(m.id);
      if (it != outstanding_.end()) outstanding_.erase(it);
      if (auto w = async_waiting_.find(m.id); w != async_waiting_.end()) {
        auto pr = w->second;
        async_waiting_.erase(w);
        cpu_.run(0, CostCategory::kProtocol,
                 [pr]() mutable { pr.set(sim::Unit{}); });
      }
      return;
    }

    // transport + port layer receive costs, then buffer + ACK. The ACK
    // is a dedicated packet (no piggybacking in this runtime).
    cpu_.charge(costs_.transport_layer, CostCategory::kRetransmitTimers);
    cpu_.charge(costs_.port_layer, CostCategory::kClientOverhead);
    cpu_.charge(static_cast<sim::Duration>(m.payload.size()) *
                    costs_.copy_per_byte * costs_.copies_per_side,
                CostCategory::kDataCopy);

    const bool duplicate = !seen_.insert(m.id).second;
    net::Frame ack = encode(mid_, f.src, Msg{MsgType::kAck, m.port, m.id, {}});
    cpu_.run(0, CostCategory::kProtocol, [this, ack]() { bus_.send(ack); });
    if (duplicate) return;

    if (m.type == MsgType::kReply) {
      if (auto w = sync_waiting_.find(m.id); w != sync_waiting_.end()) {
        auto pr = w->second;
        sync_waiting_.erase(w);
        cpu_.run(costs_.scheduler, CostCategory::kContextSwitch,
                 [pr, payload = m.payload]() mutable { pr.set(payload); });
      }
      return;
    }

    // A call: the scheduler hop runs the bound process, which replies
    // (sync) or just consumes (async).
    cpu_.run(costs_.scheduler, CostCategory::kContextSwitch, [this, m,
                                                              src = f.src]() {
      ++dispatched_;
      if (m.type == MsgType::kSyncCall) {
        auto h = sync_ports_.find(m.port);
        Bytes reply = (h != sync_ports_.end()) ? h->second(m.payload)
                                               : Bytes{};
        send_message(src, Msg{MsgType::kReply, m.port, m.id,
                              std::move(reply)});
      } else {
        auto h = async_ports_.find(m.port);
        if (h != async_ports_.end()) h->second(m.payload);
      }
    });
  }

  struct Outstanding {
    net::Mid peer;
    net::Frame frame;
    int retries = 0;
  };

  sim::Simulator& sim_;
  net::Bus& bus_;
  net::Mid mid_;
  StarModCosts costs_;
  CostLedger ledger_;
  NodeCpu cpu_;
  std::map<int, SyncHandler> sync_ports_;
  std::map<int, AsyncHandler> async_ports_;
  std::map<std::uint64_t, Outstanding> outstanding_;
  std::map<std::uint64_t, sim::Promise<Bytes>> sync_waiting_;
  std::map<std::uint64_t, sim::Promise<sim::Unit>> async_waiting_;
  std::set<std::uint64_t> seen_;
  std::uint64_t next_id_ = 1;
  std::size_t dispatched_ = 0;
};

}  // namespace soda::baseline
