// Header-only; this TU anchors the library target.
#include "baseline/starmod.h"
